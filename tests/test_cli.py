"""The `python -m repro` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_bootstrap_command(self, capsys):
        assert main(["bootstrap"]) == 0
        out = capsys.readouterr().out
        assert "bootstrap:" in out and "ms" in out

    def test_bootstrap_policy_flag(self, capsys):
        assert main(["bootstrap", "--policy", "hybrid-only"]) == 0
        assert "hybrid-only" in capsys.readouterr().out

    def test_bootstrap_cluster_flag(self, capsys):
        assert main(["bootstrap", "--clusters", "8"]) == 0
        assert "FAST-8C" in capsys.readouterr().out

    def test_table5_command(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "FAST (ours)" in out and "SHARP" in out

    def test_decide_command(self, capsys):
        assert main(["decide"]) == 0
        out = capsys.readouterr().out
        assert "config file:" in out

    def test_security_command(self, capsys):
        assert main(["security"]) == 0
        out = capsys.readouterr().out
        assert "Set-I" in out and "hes_128bit_budget" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_sched_command(self, capsys):
        assert main(["sched", "--clusters", "1,4"]) == 0
        out = capsys.readouterr().out
        assert "serial 1-pipeline" in out
        assert "speedup" in out and "violations 0" in out
        assert "graph:" in out

    def test_sched_opt_flag(self, capsys):
        assert main(["sched", "--clusters", "1", "--opt"]) == 0
        out = capsys.readouterr().out
        assert "dataflow optimiser: NTT limb transforms" in out
        assert "serial 1-pipeline" in out

    def test_opt_command(self, capsys):
        assert main(["opt", "--workload", "helr256"]) == 0
        out = capsys.readouterr().out
        assert "NTT limb transforms" in out
        assert "fused key-switches" in out

    def test_opt_stats_flag(self, capsys):
        assert main(["opt", "--workload", "helr256", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "pass sink" in out and "pass fuse" in out
        assert "fixed point after" in out

    def test_loadgen_command(self, capsys):
        assert main(["loadgen", "--tenants", "2",
                     "--requests-per-tenant", "2",
                     "--concurrency", "1"]) == 0
        out = capsys.readouterr().out
        assert "closed-loop" in out
        assert "bit-exact True" in out

    def test_loadgen_json_flag(self, capsys):
        assert main(["loadgen", "--tenants", "2",
                     "--requests-per-tenant", "2", "--no-serial",
                     "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["requests"] == 4
        assert record["errors"] == 0


class TestBenchCommand:
    """`repro bench` seeds the BENCH_sim.json regression baseline."""

    @pytest.fixture(scope="class")
    def report_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("bench") / "BENCH_sim.json"
        assert main(["bench", "--quick", "--repeats", "1",
                     "--out", str(path)]) == 0
        return path

    def test_bench_quick_writes_schema(self, report_path):
        data = json.loads(report_path.read_text())
        assert data["schema"] == "repro-bench/v10"
        assert data["quick"] is True
        assert set(data["workloads"]) == {"Bootstrap", "HELR256",
                                          "HELR1024", "ResNet-20"}

    def test_bench_bconv_section(self, report_path):
        data = json.loads(report_path.read_text())
        bconv = data["micro"]["bconv"]
        assert bconv["bit_exact"] is True
        assert set(bconv["cases"]) == {"modup_digit0", "modup_digit1",
                                       "moddown"}
        for name, case in bconv["cases"].items():
            assert case["matrix_best_s"] > 0 and case["loop_best_s"] > 0
            assert case["bit_exact"] is True, name
        assert bconv["speedup_aggregate"] >= bconv["min_required_speedup"]
        counters = bconv["plan_counters"]
        assert counters.get("plan_miss", 0) >= 3    # one per shape
        assert counters.get("plan_hit", 0) >= 3     # second pass hits
        assert counters.get("object_fallback", 0) == 0
        functional = data["micro"]["functional"]
        assert functional["bconv"].get("matrix", 0) > 0
        assert functional["bconv"].get("object_fallback", 0) == 0

    def test_bench_ntt_fused_section(self, report_path):
        data = json.loads(report_path.read_text())
        fused = data["ntt_fused"]
        assert set(fused["cases"]) == {"set_ii_mini", "n16384"}
        for name, case in fused["cases"].items():
            assert case["bit_exact"] is True, name
            assert case["radix4_best_s"] > 0 and case["radix2_best_s"] > 0
        assert fused["speedup_set_ii_mini"] >= \
            fused["min_required_speedup"]
        assert all(fused["bit_exact_grid"].values())
        increments = fused["functional_alloc"]["steady_alloc_increments"]
        assert set(increments) >= {"ntt", "bconv", "kmu"}
        assert not any(increments.values()), increments

    def test_bench_records_required_metrics(self, report_path):
        from repro.sim.engine import UNIT_NAMES
        data = json.loads(report_path.read_text())
        for name, record in data["workloads"].items():
            for key in ("wall_s", "sim_s", "sim_ms", "utilisation",
                        "key_cache_hit_rate", "hbm_bytes",
                        "key_stall_s", "method_ops"):
                assert key in record, f"{name} missing {key}"
            assert record["wall_s"] > 0 and record["sim_s"] > 0
            assert set(record["utilisation"]) == set(UNIT_NAMES)
            assert 0.0 <= record["key_cache_hit_rate"] <= 1.0

    def test_bench_sched_section(self, report_path):
        data = json.loads(report_path.read_text())
        sched = data["sched"]
        assert sched["clusters_axis"] == [1, 2, 4, 8]
        assert set(sched["workloads"]) == {"HELR256", "Bootstrap"}
        for name, record in sched["workloads"].items():
            points = {p["clusters"]: p for p in record["points"]}
            assert set(points) == {1, 2, 4, 8}, name
            assert points[4]["speedup"] >= 2.0, name
            assert abs(points[1]["speedup"] - 1.0) <= 0.01, name
            assert all(p["dependency_violations"] == 0
                       for p in points.values()), name
        assert sched["executor"]["bit_exact"] is True

    def test_bench_keyswitch_section(self, report_path):
        data = json.loads(report_path.read_text())
        ks = data["keyswitch"]
        assert ks["auto"]["bit_exact"] is True
        assert ks["auto"]["speedup"] >= ks["auto"]["min_required_speedup"]
        assert ks["kmu"]["bit_exact"] is True
        assert ks["kmu"]["speedup"] >= ks["kmu"]["min_required_speedup"]
        hoisted = ks["hoisted"]
        assert hoisted["bit_exact"] is True
        assert hoisted["rotations"] >= 4
        assert hoisted["loop_ntt_calls"] == 0
        assert (hoisted["stage_speedup"]
                >= hoisted["min_required_stage_speedup"])
        assert (hoisted["pipeline_speedup"]
                >= hoisted["min_required_pipeline_speedup"])

    def test_bench_dataflow_section(self, report_path):
        from repro.bench.dataflow import validate_dataflow
        data = json.loads(report_path.read_text())
        section = data["dataflow"]
        assert validate_dataflow(section) == []
        assert set(section["workloads"]) == {"HELR256", "Bootstrap"}
        for name, record in section["workloads"].items():
            assert record["ntt_limb_calls_after"] \
                < record["ntt_limb_calls_before"], name
            assert record["ops_identical"] is True, name
            assert record["opt_sim_s"] <= record["base_sim_s"] + 1e-9
        assert section["executor"]["bit_exact"] is True
        assert section["executor"]["optimised"] is True
        fused = section["fused_rescale"]
        assert fused["fused_kernel_calls"] > 0
        assert fused["levels_match"] and fused["scales_match"]
        assert not any(section["plan_cache_evictions"].values())

    def test_bench_serving_section(self, report_path):
        from repro.bench.serving import validate_serving
        data = json.loads(report_path.read_text())
        section = data["serving"]
        assert validate_serving(section) == []
        loadgen = section["loadgen"]
        assert loadgen["requests"] >= 64 and loadgen["tenants"] >= 4
        assert loadgen["speedup"] >= section["min_speedup"]
        assert loadgen["bit_exact"] is True
        assert loadgen["pin_violations"] == 0
        assert loadgen["p99_ms"] >= loadgen["p50_ms"] > 0
        admission = section["evk_admission"]
        assert admission["miss_reduction"] > 0
        assert admission["aware"]["hits"] > admission["naive"]["hits"]

    def test_bench_detects_serving_regression(self, report_path,
                                              tmp_path, capsys):
        doctored = json.loads(report_path.read_text())
        doctored["serving"]["evk_admission"]["aware"]["misses"] = 0
        baseline = tmp_path / "BENCH_serving_doctored.json"
        baseline.write_text(json.dumps(doctored))
        out = tmp_path / "BENCH_now.json"
        assert main(["bench", "--quick", "--repeats", "1",
                     "--out", str(out), "--baseline", str(baseline),
                     "--wall-tolerance", "50"]) == 1
        assert "serving." in capsys.readouterr().out

    def test_bench_detects_dataflow_regression(self, report_path,
                                               tmp_path, capsys):
        doctored = json.loads(report_path.read_text())
        for record in doctored["dataflow"]["workloads"].values():
            record["ntt_limb_calls_after"] -= 1  # baseline was better
        baseline = tmp_path / "BENCH_df_doctored.json"
        baseline.write_text(json.dumps(doctored))
        out = tmp_path / "BENCH_now.json"
        assert main(["bench", "--quick", "--repeats", "1",
                     "--out", str(out), "--baseline", str(baseline),
                     "--wall-tolerance", "50"]) == 1
        assert "dataflow." in capsys.readouterr().out

    def test_bench_detects_keyswitch_regression(self, report_path,
                                                tmp_path, capsys):
        doctored = json.loads(report_path.read_text())
        # --wall-tolerance 50 keeps load-dependent workload walls quiet,
        # so the doctored baseline must be >51x faster to trip the gate
        doctored["keyswitch"]["auto"]["gather_best_s"] *= 0.01
        doctored["keyswitch"]["hoisted"]["stage_new_s"] *= 0.01
        baseline = tmp_path / "BENCH_ks_doctored.json"
        baseline.write_text(json.dumps(doctored))
        out = tmp_path / "BENCH_now.json"
        assert main(["bench", "--quick", "--repeats", "1",
                     "--out", str(out), "--baseline", str(baseline),
                     "--wall-tolerance", "50"]) == 1
        assert "keyswitch." in capsys.readouterr().out

    def test_bench_detects_sched_regression(self, report_path,
                                            tmp_path, capsys):
        doctored = json.loads(report_path.read_text())
        for record in doctored["sched"]["workloads"].values():
            for point in record["points"]:
                point["sim_s"] *= 0.5
        baseline = tmp_path / "BENCH_sched_doctored.json"
        baseline.write_text(json.dumps(doctored))
        out = tmp_path / "BENCH_now.json"
        assert main(["bench", "--quick", "--repeats", "1",
                     "--out", str(out), "--baseline", str(baseline),
                     "--wall-tolerance", "50"]) == 1
        assert "sched." in capsys.readouterr().out

    def test_bench_baseline_self_compare_passes(self, report_path,
                                                tmp_path, capsys):
        out = tmp_path / "BENCH_again.json"
        # Wide wall tolerance: this asserts the *simulated* numbers
        # are reproducible; host wall time is load-dependent noise.
        assert main(["bench", "--quick", "--repeats", "1",
                     "--out", str(out),
                     "--baseline", str(report_path),
                     "--wall-tolerance", "50"]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_bench_detects_sim_regression(self, report_path, tmp_path,
                                          capsys):
        doctored = json.loads(report_path.read_text())
        for record in doctored["workloads"].values():
            record["sim_s"] *= 0.5  # pretend the baseline was 2x faster
        baseline = tmp_path / "BENCH_doctored.json"
        baseline.write_text(json.dumps(doctored))
        out = tmp_path / "BENCH_now.json"
        assert main(["bench", "--quick", "--repeats", "1",
                     "--out", str(out),
                     "--baseline", str(baseline)]) == 1
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_bench_chrome_trace_export(self, tmp_path):
        out = tmp_path / "BENCH.json"
        trace = tmp_path / "timeline.json"
        assert main(["bench", "--quick", "--repeats", "1",
                     "--out", str(out),
                     "--chrome-trace", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])
