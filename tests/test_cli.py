"""The `python -m repro` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_bootstrap_command(self, capsys):
        assert main(["bootstrap"]) == 0
        out = capsys.readouterr().out
        assert "bootstrap:" in out and "ms" in out

    def test_bootstrap_policy_flag(self, capsys):
        assert main(["bootstrap", "--policy", "hybrid-only"]) == 0
        assert "hybrid-only" in capsys.readouterr().out

    def test_bootstrap_cluster_flag(self, capsys):
        assert main(["bootstrap", "--clusters", "8"]) == 0
        assert "FAST-8C" in capsys.readouterr().out

    def test_table5_command(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "FAST (ours)" in out and "SHARP" in out

    def test_decide_command(self, capsys):
        assert main(["decide"]) == 0
        out = capsys.readouterr().out
        assert "config file:" in out

    def test_security_command(self, capsys):
        assert main(["security"]) == 0
        out = capsys.readouterr().out
        assert "Set-I" in out and "hes_128bit_budget" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
