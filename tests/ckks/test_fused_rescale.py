"""The fused ModDown+Rescale kernel and ``multiply_rescale``.

Three layers of evidence:

* the batched eval-domain kernel is bit-identical to an independent
  coefficient-domain oracle evaluating the same ``(Z - BConv(Z mod
  (D*P))) * (D*P)^{-1}`` formula through per-pair object conversions;
* ``multiply_rescale`` matches ``multiply`` + ``rescale`` on level and
  scale bookkeeping exactly, and on plaintext values to within the
  CKKS noise floor (the two paths round once vs twice, so residues
  legitimately differ by sub-unit slack);
* the fused kernel's conversion plans share the bounded LRU plan
  caches with the sequential path — repeated switching at several
  levels must hit the cache on the second pass with zero evictions.
"""

import numpy as np
import pytest

from repro.ckks import rns
from repro.ckks.context import CkksContext
from repro.ckks.keys import HYBRID, KLSS
from repro.ckks.keyswitch.hybrid import (
    _mod_down_rescale_ready,
    hybrid_decompose,
    key_mult_accumulate,
    mod_down_rescale_pair,
    mod_down_rescale_reference,
)
from repro.ckks.params import toy_params

MAX_TOY_ERROR = 1e-4


@pytest.fixture(scope="module")
def ctx():
    return CkksContext(toy_params(ring_degree=256), seed=3)


@pytest.fixture(scope="module")
def message(ctx):
    base = np.array([0.5, -1.0, 0.25, 1.5], dtype=np.complex128)
    return np.tile(base, ctx.params.num_slots // 4)


def _fused_inputs(ctx, ct):
    """The accumulator and tensor halves multiply_rescale feeds the
    fused kernel, rebuilt through the public pipeline pieces."""
    key = ctx.evaluation_key(HYBRID, ct.level, "mult")
    d2 = ct.c1 * ct.c1
    decomposed = hybrid_decompose(d2.to_coeff(), key, ctx.params.alpha)
    acc0, acc1 = key_mult_accumulate(decomposed, key)
    d0 = ct.c0 * ct.c0
    d1 = ct.c0 * ct.c1 + ct.c1 * ct.c0
    return key, acc0, acc1, d0, d1


class TestKernelVsReference:
    @pytest.mark.parametrize("drop", [1, 2])
    def test_bit_identical_to_oracle(self, ctx, message, drop):
        ct = ctx.encrypt(message)
        key, acc0, acc1, d0, d1 = _fused_inputs(ctx, ct)
        assert _mod_down_rescale_ready(acc0, acc1, key.aux_count, drop)
        f0, f1 = mod_down_rescale_pair(acc0, acc1, d0, d1,
                                       key.aux_count, drop)
        for fused, acc, d in ((f0, acc0, d0), (f1, acc1, d1)):
            ref = mod_down_rescale_reference(
                acc.to_coeff(), d.to_coeff(), key.aux_count, drop)
            got = fused.to_coeff()
            assert got.moduli == ref.moduli
            for i, (a, b) in enumerate(zip(got.limbs, ref.limbs)):
                assert np.array_equal(a, b), f"limb {i} differs"

    def test_rejects_coeff_form_inputs(self, ctx, message):
        ct = ctx.encrypt(message)
        key, acc0, acc1, d0, d1 = _fused_inputs(ctx, ct)
        with pytest.raises(ValueError):
            mod_down_rescale_pair(acc0, acc1, d0.to_coeff(), d1,
                                  key.aux_count, 1)

    def test_rejects_full_drop(self, ctx, message):
        """drop == q_count would leave no primes; the guard refuses."""
        ct = ctx.encrypt(message)
        key, acc0, acc1, d0, d1 = _fused_inputs(ctx, ct)
        q_count = len(acc0.moduli) - key.aux_count
        assert not _mod_down_rescale_ready(acc0, acc1, key.aux_count,
                                           q_count)
        with pytest.raises(ValueError):
            mod_down_rescale_pair(acc0, acc1, d0, d1,
                                  key.aux_count, q_count)


class TestMultiplyRescale:
    def test_matches_sequential_bookkeeping(self, ctx, message):
        ct = ctx.encrypt(message)
        fused = ctx.multiply_rescale(ct, ct, method=HYBRID)
        seq = ctx.rescale(ctx.multiply(ct, ct, method=HYBRID))
        assert fused.level == seq.level == ct.level - 1
        assert fused.scale == pytest.approx(seq.scale, rel=1e-12)
        assert fused.c0.moduli == seq.c0.moduli

    def test_decrypts_correctly(self, ctx, message):
        ct = ctx.encrypt(message)
        fused = ctx.multiply_rescale(ct, ct, method=HYBRID)
        err = np.max(np.abs(ctx.decrypt(fused) - message ** 2))
        assert err < MAX_TOY_ERROR

    def test_double_rescale_bookkeeping(self, ctx, message):
        """rescales=2 drops two primes in one fused conversion.  (The
        toy scale makes a double-rescaled product numerically
        meaningless, so value correctness is covered by the drop=2
        kernel-vs-oracle test; this checks the ciphertext metadata.)"""
        ct = ctx.encrypt(message)
        out = ctx.multiply_rescale(ct, ct, method=HYBRID, rescales=2)
        assert out.level == ct.level - 2
        seq = ctx.rescale(ctx.rescale(
            ctx.multiply(ct, ct, method=HYBRID)))
        assert out.scale == pytest.approx(seq.scale, rel=1e-12)
        assert out.c0.moduli == seq.c0.moduli

    def test_klss_falls_back_bit_exactly(self, ctx, message):
        """KLSS has no fused kernel; the fallback is the sequential
        pipeline and therefore bit-identical to it."""
        ct = ctx.encrypt(message)
        fused = ctx.multiply_rescale(ct, ct, method=KLSS)
        seq = ctx.rescale(ctx.multiply(ct, ct, method=KLSS))
        assert fused.level == seq.level and fused.scale == seq.scale
        for a, b in zip(fused.c0.limbs, seq.c0.limbs):
            assert np.array_equal(a, b)
        for a, b in zip(fused.c1.limbs, seq.c1.limbs):
            assert np.array_equal(a, b)

    def test_rejects_zero_rescales(self, ctx, message):
        ct = ctx.encrypt(message)
        with pytest.raises(ValueError):
            ctx.multiply_rescale(ct, ct, rescales=0)

    def test_fused_kernel_counter(self, ctx, message):
        from repro import obs
        from repro.obs.tracer import get_tracer
        ct = ctx.encrypt(message)
        was_enabled = obs.enabled()
        obs.configure(enabled=True, reset=True)
        try:
            ctx.multiply_rescale(ct, ct, method=HYBRID)
            counters = get_tracer().metrics.counters()
        finally:
            obs.configure(enabled=was_enabled, reset=True)
        assert counters.get("keyswitch.moddown.fused_rescale") == 1
        assert counters.get("keyswitch.moddown.fused_rescale_drop") == 1


class TestPlanCacheCompatibility:
    def test_steady_state_has_zero_evictions(self, ctx, message):
        """Fused switches at several levels build their conversion
        plans once; a second identical pass is all cache hits and the
        bounded LRU never evicts (the fused basis keys are
        canonicalised exactly like the sequential path's)."""
        rns.clear_bconv_plan_cache()
        ct = ctx.encrypt(message)

        def one_pass(ct):
            out = ctx.multiply_rescale(ct, ct, method=HYBRID)
            return ctx.multiply_rescale(out, out, method=HYBRID,
                                        rescales=2)
        one_pass(ct)
        info_first = rns.bconv_plan_cache_info()
        assert info_first.misses > 0
        one_pass(ct)
        info_second = rns.bconv_plan_cache_info()
        assert info_second.misses == info_first.misses
        assert info_second.hits > info_first.hits
        assert rns.plan_cache_evictions()["bconv"] == 0

    def test_fused_and_sequential_share_rescale_plan(self, ctx,
                                                     message):
        """The drop=1 fused conversion uses the same (src, dst) basis
        pair the exact-rescale path would: one plan serves both."""
        ct = ctx.encrypt(message)
        key, acc0, acc1, d0, d1 = _fused_inputs(ctx, ct)
        q_count = len(acc0.moduli) - key.aux_count
        src = acc0.moduli[q_count - 1:]
        dst = acc0.moduli[:q_count - 1]
        plan_before = rns.get_bconv_plan(src, dst)
        info_before = rns.bconv_plan_cache_info()
        mod_down_rescale_pair(acc0, acc1, d0, d1, key.aux_count, 1)
        info_after = rns.bconv_plan_cache_info()
        assert info_after.misses == info_before.misses
        assert rns.get_bconv_plan(src, dst) is plan_before
