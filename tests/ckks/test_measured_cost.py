"""Measured kernel unit costs and the re-pinned Fig. 2 crossover."""

import json

import pytest

from repro.ckks.keyswitch import cost
from repro.ckks.keyswitch.cost import MeasuredKernelCosts
from repro.ckks.params import SET_I, SET_II


@pytest.fixture
def unit_costs():
    """Synthetic costs where every modop is equally expensive — the
    measured crossover must then match the analytic count-based one."""
    return MeasuredKernelCosts(ntt=1.0, bconv=1.0, keymult=1.0,
                               elementwise=1.0)


class TestMeasuredKernelCosts:
    def test_round_trips_through_dict(self, unit_costs):
        data = unit_costs.as_dict()
        again = MeasuredKernelCosts.from_dict(json.loads(
            json.dumps(data)))
        assert again == unit_costs

    def test_seconds_weights_by_kernel(self):
        costs = MeasuredKernelCosts(ntt=2.0, bconv=0.0, keymult=0.0,
                                    elementwise=0.0)
        ops = cost.KernelOps(ntt=3.0, bconv=100.0, keymult=100.0,
                             elementwise=100.0)
        assert costs.seconds(ops) == 6.0

    def test_keyswitch_seconds_positive(self, unit_costs):
        for method, params in (("hybrid", SET_I), ("klss", SET_II)):
            assert cost.keyswitch_seconds(method, params, 10,
                                          unit_costs) > 0.0


class TestCrossoverLevel:
    def test_unit_costs_match_analytic(self, unit_costs):
        analytic = cost.crossover_level(SET_I, SET_II)
        measured = cost.crossover_level(SET_I, SET_II,
                                        costs=unit_costs)
        assert measured == analytic

    def test_analytic_crossover_is_pinned(self):
        """The count-based Fig. 2 crossover sits at level 12 for the
        paper's parameter sets."""
        assert cost.crossover_level(SET_I, SET_II) == 12

    def test_keymult_blowup_removes_crossover(self):
        """When KeyMult modmuls are expensive relative to BConv (what
        the software calibration actually measures), KLSS's wide-word
        KeyMult blowup dominates at every level and hybrid never
        loses: no crossover."""
        costs = MeasuredKernelCosts(ntt=1e-9, bconv=1e-9,
                                    keymult=1e-7, elementwise=1e-9)
        assert cost.crossover_level(SET_I, SET_II, costs=costs) is None

    def test_expensive_bconv_pulls_crossover_in(self):
        """Expensive base conversions penalise hybrid's ModUp/ModDown
        towers and move the crossover to a lower level."""
        costs = MeasuredKernelCosts(ntt=1e-9, bconv=1e-7,
                                    keymult=1e-9, elementwise=1e-9)
        pulled = cost.crossover_level(SET_I, SET_II, costs=costs)
        assert pulled is not None
        assert pulled <= 12

    def test_measured_ratio_consistency(self, unit_costs):
        analytic = cost.quantitative_line(SET_I, SET_II, 20)
        measured = cost.measured_quantitative_line(SET_I, SET_II, 20,
                                                   unit_costs)
        assert measured == pytest.approx(analytic)


class TestCalibration:
    def test_calibrate_kernel_costs_smoke(self):
        from repro.bench.calibrate import calibrate_kernel_costs
        costs = calibrate_kernel_costs(reps=1, inner=1)
        for unit in (costs.ntt, costs.bconv, costs.keymult,
                     costs.elementwise):
            assert 0.0 < unit < 1.0  # seconds per modop
        meta = dict(costs.meta)
        assert meta["ring_degree"] == 1024

    def test_report_round_trips(self, tmp_path):
        from repro.bench import calibrate
        report = calibrate.calibration_report(reps=1)
        assert report["schema"] == calibrate.CALIBRATION_SCHEMA
        assert report["crossover"]["analytic_level"] == 12
        path = tmp_path / "CALIBRATION.json"
        calibrate.write_calibration(report, str(path))
        costs = calibrate.load_calibration(str(path))
        assert costs.as_dict()["ntt"] == report["kernel_costs"]["ntt"]
