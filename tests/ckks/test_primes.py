"""Tests for NTT-friendly prime generation and root finding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks import primes


KNOWN_PRIMES = [2, 3, 5, 7, 97, 268435009, (1 << 31) - 1, (1 << 61) - 1]
KNOWN_COMPOSITES = [1, 4, 100, 268435009 * 3, (1 << 31) - 2,
                    561, 41041, 825265]  # incl. Carmichael numbers


class TestIsPrime:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert primes.is_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_known_composites(self, c):
        assert not primes.is_prime(c)

    def test_negative_and_zero(self):
        assert not primes.is_prime(0)
        assert not primes.is_prime(-7)


class TestNttPrimes:
    @pytest.mark.parametrize("bits,n", [(20, 64), (28, 32), (36, 256),
                                        (60, 1024)])
    def test_congruence_and_size(self, bits, n):
        found = primes.ntt_primes(3, bits, n)
        assert len(found) == 3
        for p in found:
            assert p.bit_length() == bits
            assert (p - 1) % (2 * n) == 0
            assert primes.is_prime(p)

    def test_distinctness(self):
        found = primes.ntt_primes(8, 28, 64)
        assert len(set(found)) == 8

    def test_exclusion(self):
        first = primes.ntt_primes(2, 28, 64)
        more = primes.ntt_primes(2, 28, 64, exclude=set(first))
        assert not set(first) & set(more)

    def test_ascending_search(self):
        down = primes.ntt_primes(1, 28, 64)[0]
        up = primes.ntt_primes(1, 28, 64, descending_from_top=False)[0]
        assert up != down
        assert up.bit_length() == down.bit_length() == 28


class TestRoots:
    def test_primitive_root_generates(self):
        q = 97
        g = primes.primitive_root(q)
        seen = {pow(g, k, q) for k in range(q - 1)}
        assert len(seen) == q - 1

    @pytest.mark.parametrize("n", [8, 32, 128])
    def test_root_of_unity_order(self, n):
        q = primes.ntt_primes(1, 24, n)[0]
        w = primes.root_of_unity(2 * n, q)
        assert pow(w, 2 * n, q) == 1
        assert pow(w, n, q) == q - 1  # primitive: w^n = -1

    def test_root_of_unity_bad_order(self):
        with pytest.raises(ValueError):
            primes.root_of_unity(7, 97)  # 7 does not divide 96


@given(st.integers(2, 10**6))
@settings(max_examples=200, deadline=None)
def test_property_is_prime_matches_trial_division(n):
    def trial(n):
        if n < 2:
            return False
        d = 2
        while d * d <= n:
            if n % d == 0:
                return False
            d += 1
        return True
    assert primes.is_prime(n) == trial(n)


@given(st.integers(0, 2**32))
@settings(max_examples=100, deadline=None)
def test_property_factorize_via_root_search(n):
    # primitive_root exercises _factorize; check on small primes only.
    if primes.is_prime(n % 997 + 3):
        p = n % 997 + 3
        g = primes.primitive_root(p)
        assert pow(g, p - 1, p) == 1
