"""Noise estimates must bound (and track) measured functional noise."""

import numpy as np
import pytest

from repro.ckks import CkksContext, noise, rns, toy_params
from repro.ckks.params import SET_I, SET_II


@pytest.fixture(scope="module")
def ctx():
    return CkksContext(toy_params(ring_degree=32, max_level=4, alpha=2,
                                  prime_bits=28, scale_bits=28), seed=21)


def measured_noise(ctx, ct, expected_slots):
    """Absolute coefficient-domain error of a ciphertext."""
    from repro.ckks import encoding
    s = ctx.secret_key.as_rns(ct.moduli)
    got = np.array(rns.compose_crt((ct.c0 + ct.c1 * s).to_coeff()),
                   dtype=float)
    ref = np.array([float(c) for c in encoding.encode_to_coeffs(
        expected_slots, ctx.params.ring_degree, ct.scale)])
    return float(np.max(np.abs(got - ref)))


class TestFreshNoise:
    def test_estimate_bounds_measurement(self, ctx):
        v = np.array([0.5, -0.25, 1.0, 0.75])
        estimate = noise.fresh_noise(ctx.params)
        for seed in range(3):
            ct = ctx.encrypt(np.tile(v, 4))
            assert measured_noise(ctx, ct, np.tile(v, 4)) < estimate

    def test_estimate_not_absurdly_loose(self, ctx):
        v = np.tile(np.array([0.5, -0.25, 1.0, 0.75]), 4)
        ct = ctx.encrypt(v)
        m = measured_noise(ctx, ct, v)
        assert noise.fresh_noise(ctx.params) < max(m, 1.0) * 1e4


class TestKeySwitchNoise:
    @pytest.mark.parametrize("method,estimator", [
        ("hybrid", noise.hybrid_keyswitch_noise),
        ("klss", noise.klss_keyswitch_noise)])
    def test_rotation_noise_bounded(self, ctx, method, estimator):
        v = np.tile(np.array([0.5, -0.25, 1.0, 0.75]), 4)
        ct = ctx.encrypt(v)
        rot = ctx.rotate(ct, 1, method=method)
        m = measured_noise(ctx, rot, np.roll(v, -1))
        bound = noise.fresh_noise(ctx.params) + \
            estimator(ctx.params, ct.level)
        assert m < bound


class TestTracker:
    def test_budget_decreases_through_depth(self):
        t = noise.NoiseTracker(SET_II)
        budgets = [t.budget_bits()]
        for _ in range(3):
            t.multiply()
            t.rescale()
            budgets.append(t.budget_bits())
        assert all(b2 < b1 for b1, b2 in zip(budgets, budgets[1:]))

    def test_level_bookkeeping(self):
        t = noise.NoiseTracker(SET_II)
        start = t.level
        t.multiply().rescale()
        assert t.level == start - 1

    def test_rescale_at_level_zero_raises(self):
        t = noise.NoiseTracker(toy_params(max_level=1))
        t.rescale()
        with pytest.raises(ValueError):
            t.rescale()

    def test_depth_capacity_full_sets(self):
        # A unit-magnitude squaring chain loses ~1 bit per level (the
        # cross-term doubles the noise), so a 36-bit scale sustains
        # ~22 squarings; deeper circuits rely on smaller messages or
        # the double-rescale discipline the paper adopts.
        for params in (SET_I, SET_II):
            t = noise.NoiseTracker(params)
            assert 18 <= t.depth_capacity() <= params.max_level

    def test_rotation_adds_less_than_mult(self):
        a = noise.NoiseTracker(SET_II)
        b = noise.NoiseTracker(SET_II)
        a.rotate()
        b.multiply()
        assert a.noise < b.noise

    def test_add_doubles_noise(self):
        t = noise.NoiseTracker(SET_II)
        before = t.noise
        t.add()
        assert t.noise == pytest.approx(2 * before)


class TestMethodComparison:
    def test_both_methods_keep_noise_manageable(self):
        for params in (SET_I, SET_II):
            for method in ("hybrid", "klss"):
                ks = (noise.hybrid_keyswitch_noise(params, 20)
                      if method == "hybrid" else
                      noise.klss_keyswitch_noise(params, 20))
                # well under the scale: key-switching must not eat
                # message precision
                assert ks < 2 ** params.scale_bits / 2 ** 10
