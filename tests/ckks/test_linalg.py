"""Encrypted linear algebra against numpy references."""

import numpy as np
import pytest

from repro.ckks import CkksContext, linalg, toy_params


@pytest.fixture(scope="module")
def ctx():
    return CkksContext(toy_params(ring_degree=64, max_level=6, alpha=2,
                                  prime_bits=28, scale_bits=24),
                       seed=42)


def encrypt_vec(ctx, vec):
    slots = ctx.params.num_slots
    return ctx.encrypt(np.tile(vec, slots // len(vec)))


class TestRotateAndSum:
    def test_sums_all_slots(self, ctx):
        v = np.array([1.0, 2.0, 3.0, 4.0, -1.0, 0.5, 2.5, -2.0])
        ct = linalg.rotate_and_sum(ctx, encrypt_vec(ctx, v), 8)
        got = ctx.decrypt(ct)[:8].real
        assert np.allclose(got, np.sum(v), atol=1e-3)

    def test_partial_block(self, ctx):
        v = np.array([1.0, 2.0, 3.0, 4.0])
        ct = linalg.rotate_and_sum(ctx, encrypt_vec(ctx, v), 4)
        got = ctx.decrypt(ct)[:4].real
        assert np.allclose(got, 10.0, atol=1e-3)

    def test_non_power_of_two_rejected(self, ctx):
        ct = encrypt_vec(ctx, np.ones(4))
        with pytest.raises(ValueError):
            linalg.rotate_and_sum(ctx, ct, 3)


class TestInnerProduct:
    def test_against_numpy(self, ctx):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, 8)
        w = rng.uniform(-1, 1, 8)
        ct = linalg.inner_product(ctx, encrypt_vec(ctx, x), w)
        got = ctx.decrypt(ct)[0].real
        assert abs(got - float(x @ w)) < 1e-2


class TestMatvecBsgs:
    @pytest.mark.parametrize("d,bs", [(4, 2), (8, 2), (8, 4)])
    def test_against_numpy(self, ctx, d, bs):
        rng = np.random.default_rng(d * 10 + bs)
        mat = rng.uniform(-1, 1, (d, d))
        x = rng.uniform(-1, 1, d)
        ct = linalg.matvec_bsgs(ctx, mat, encrypt_vec(ctx, x),
                                baby_steps=bs)
        got = ctx.decrypt(ct)[:d].real
        assert np.max(np.abs(got - mat @ x)) < 1e-2

    def test_identity_matrix(self, ctx):
        x = np.array([1.0, -2.0, 0.5, 3.0])
        ct = linalg.matvec_bsgs(ctx, np.eye(4), encrypt_vec(ctx, x))
        assert np.max(np.abs(ctx.decrypt(ct)[:4].real - x)) < 1e-2

    def test_rejects_non_square(self, ctx):
        with pytest.raises(ValueError):
            linalg.matvec_bsgs(ctx, np.ones((2, 3)),
                               encrypt_vec(ctx, np.ones(4)))

    def test_rejects_non_power_of_two(self, ctx):
        with pytest.raises(ValueError):
            linalg.matvec_bsgs(ctx, np.ones((3, 3)),
                               encrypt_vec(ctx, np.ones(4)))


class TestPolynomialEvaluation:
    def test_quadratic(self, ctx):
        x = np.array([0.1, -0.5, 0.9, 0.3])
        ct = linalg.evaluate_polynomial(ctx, encrypt_vec(ctx, x),
                                        [1.0, -2.0, 0.5])
        expected = 1.0 - 2.0 * x + 0.5 * x**2
        got = ctx.decrypt(ct)[:4].real
        assert np.max(np.abs(got - expected)) < 1e-2

    def test_cubic(self, ctx):
        x = np.array([0.2, -0.4, 0.6, -0.8])
        coeffs = [0.5, 1.0, -0.25, 0.125]
        ct = linalg.evaluate_polynomial(ctx, encrypt_vec(ctx, x), coeffs)
        expected = sum(c * x**i for i, c in enumerate(coeffs))
        got = ctx.decrypt(ct)[:4].real
        assert np.max(np.abs(got - expected)) < 2e-2

    def test_degree_zero_rejected(self, ctx):
        ct = encrypt_vec(ctx, np.ones(4))
        with pytest.raises(ValueError):
            linalg.evaluate_polynomial(ctx, ct, [1.0])


class TestSigmoid:
    def test_coefficients_fit(self):
        coeffs = linalg.sigmoid_coefficients(7)
        xs = np.linspace(-4, 4, 33)
        approx = sum(c * xs**i for i, c in enumerate(coeffs))
        exact = 1 / (1 + np.exp(-xs))
        assert np.max(np.abs(approx - exact)) < 0.02

    def test_encrypted_sigmoid(self, ctx):
        x = np.array([-2.0, -0.5, 0.5, 2.0])
        ct = linalg.apply_sigmoid(ctx, encrypt_vec(ctx, x), degree=3)
        got = ctx.decrypt(ct)[:4].real
        exact = 1 / (1 + np.exp(-x))
        assert np.max(np.abs(got - exact)) < 0.12  # degree-3 fit limit
