"""KeyMultPlan: the fused lazy-reduction KeyMult vs its reference loop."""

import numpy as np
import pytest

from repro import obs
from repro.ckks import CkksContext, rns, set_ii_mini, toy_params
from repro.ckks.keys import HYBRID, KLSS
from repro.ckks.keyswitch.hybrid import (KeyMultPlan, _kmu_tier,
                                         get_key_mult_plan,
                                         hybrid_decompose,
                                         key_mult_accumulate,
                                         key_mult_accumulate_reference)
from repro.ckks.keyswitch.klss import klss_decompose


@pytest.fixture(scope="module")
def mini_ctx():
    return CkksContext(set_ii_mini(ring_degree=256, max_level=4), seed=3)


@pytest.fixture(scope="module")
def toy_ctx():
    return CkksContext(toy_params(ring_degree=32, max_level=4, alpha=2,
                                  prime_bits=28), seed=5)


def _random_poly(ctx, level, seed=0):
    rng = np.random.default_rng(seed)
    coeffs = [int(v) for v in rng.integers(-10**6, 10**6,
                                           size=ctx.params.ring_degree)]
    return rns.from_big_ints(coeffs, ctx.moduli_at(level),
                             ctx.params.ring_degree)


def _assert_poly_equal(a, b):
    assert a.moduli == b.moduli and a.form == b.form
    for x, y in zip(a.limbs, b.limbs):
        np.testing.assert_array_equal(np.asarray(x, dtype=object),
                                      np.asarray(y, dtype=object))


class TestTierSelection:
    def test_narrow_moduli_take_u64(self):
        # 28-bit moduli, 4 digits: 2*28 + 2 = 58 <= 64
        assert _kmu_tier((268369921, 268238849), 4) == "u64"

    def test_wide_moduli_take_hilo(self):
        # 60-bit moduli: 2*60 + ceil(log2 d) > 64 but <= 126
        q = (1 << 60) - 93
        assert _kmu_tier((q,), 4) == "hilo"

    def test_digit_count_enters_budget(self):
        # 31-bit: 62 + ceil(log2 d) crosses 64 at d = 5
        q = (1 << 31) - 1
        assert _kmu_tier((q,), 4) == "u64"
        assert _kmu_tier((q,), 5) == "hilo"


class TestBitExactness:
    def test_hybrid_set_ii_mini_shapes(self, mini_ctx):
        """hilo tier at the paper's real word length (36-bit primes)."""
        ctx = mini_ctx
        level = ctx.params.max_level
        key = ctx.evaluation_key(HYBRID, level, "mult")
        plan = get_key_mult_plan(key)
        assert plan is not None and plan.tier == "hilo"
        digits = hybrid_decompose(_random_poly(ctx, level, seed=1),
                                  key, ctx.params.alpha)
        got0, got1 = plan.accumulate(plan.stack(digits))
        ref0, ref1 = key_mult_accumulate_reference(digits, key)
        _assert_poly_equal(got0, ref0)
        _assert_poly_equal(got1, ref1)

    def test_klss_wide_digits(self, mini_ctx):
        """hilo carry path at KLSS's 60-bit t-moduli."""
        ctx = mini_ctx
        level = ctx.params.max_level
        key = ctx.evaluation_key(KLSS, level, "mult")
        plan = get_key_mult_plan(key)
        assert plan is not None and plan.tier == "hilo"
        digits = klss_decompose(_random_poly(ctx, level, seed=2), key)
        got0, got1 = plan.accumulate(plan.stack(digits))
        ref0, ref1 = key_mult_accumulate_reference(digits, key)
        _assert_poly_equal(got0, ref0)
        _assert_poly_equal(got1, ref1)

    def test_u64_tier_at_toy_params(self, toy_ctx):
        ctx = toy_ctx
        level = 3
        key = ctx.evaluation_key(HYBRID, level, "mult")
        plan = get_key_mult_plan(key)
        assert plan is not None and plan.tier == "u64"
        digits = hybrid_decompose(_random_poly(ctx, level, seed=3),
                                  key, ctx.params.alpha)
        got0, got1 = key_mult_accumulate(digits, key)
        ref0, ref1 = key_mult_accumulate_reference(digits, key)
        _assert_poly_equal(got0, ref0)
        _assert_poly_equal(got1, ref1)

    def test_worst_case_residues(self, toy_ctx):
        """All-(q-1) digits: the lazy accumulators at their ceiling."""
        ctx = toy_ctx
        level = 2
        key = ctx.evaluation_key(HYBRID, level, "mult")
        plan = get_key_mult_plan(key)
        n = ctx.params.ring_degree
        digits = []
        for _ in range(key.num_digits):
            limbs = [np.full(n, q - 1, dtype=np.int64)
                     for q in key.moduli]
            digits.append(rns.RnsPoly(limbs, key.moduli, rns.EVAL))
        got0, got1 = plan.accumulate(plan.stack(digits))
        ref0, ref1 = key_mult_accumulate_reference(digits, key)
        _assert_poly_equal(got0, ref0)
        _assert_poly_equal(got1, ref1)


class TestDigitCountValidation:
    def test_exact_count_required(self, toy_ctx):
        ctx = toy_ctx
        level = 3
        key = ctx.evaluation_key(HYBRID, level, "mult")
        digits = hybrid_decompose(_random_poly(ctx, level, seed=4),
                                  key, ctx.params.alpha)
        assert len(digits) == key.num_digits
        for wrong in (digits[:-1], digits + digits[:1]):
            if len(wrong) == key.num_digits:
                continue
            with pytest.raises(ValueError, match="exactly"):
                key_mult_accumulate(wrong, key)

    def test_stack_validates_basis_and_form(self, toy_ctx):
        ctx = toy_ctx
        key = ctx.evaluation_key(HYBRID, 3, "mult")
        plan = get_key_mult_plan(key)
        wrong_basis = [_random_poly(ctx, 2, seed=5).to_eval()
                       for _ in range(key.num_digits)]
        with pytest.raises(ValueError):
            plan.stack(wrong_basis)
        coeff_digits = [_random_poly(ctx, 3, seed=6)
                        for _ in range(key.num_digits)]
        with pytest.raises(ValueError, match="eval"):
            KeyMultPlan(key).stack(coeff_digits)


class TestPlanCaching:
    def test_plan_cached_on_key(self, toy_ctx):
        key = toy_ctx.evaluation_key(HYBRID, 2, "mult")
        assert get_key_mult_plan(key) is get_key_mult_plan(key)

    def test_counters(self, toy_ctx):
        key = toy_ctx.evaluation_key(HYBRID, 1, "mult")
        assert get_key_mult_plan(key) is not None  # build outside trace
        obs.configure(enabled=True, reset=True)
        try:
            get_key_mult_plan(key)
            get_key_mult_plan(key)
            counters = obs.snapshot(obs.get_tracer())["counters"]
            assert counters["keyswitch.kmu.plan_hit"] == 2
            assert "keyswitch.kmu.plan_miss" not in counters
        finally:
            obs.configure(enabled=False, reset=True)

    def test_fused_counter_fires(self, toy_ctx):
        ctx = toy_ctx
        level = 3
        key = ctx.evaluation_key(HYBRID, level, "mult")
        digits = hybrid_decompose(_random_poly(ctx, level, seed=7),
                                  key, ctx.params.alpha)
        obs.configure(enabled=True, reset=True)
        try:
            key_mult_accumulate(digits, key)
            counters = obs.snapshot(obs.get_tracer())["counters"]
            assert counters["keyswitch.kmu.fused"] == 1
            assert counters["keyswitch.kmu.tier.u64"] == 1
            assert "keyswitch.kmu.object_fallback" not in counters
        finally:
            obs.configure(enabled=False, reset=True)
