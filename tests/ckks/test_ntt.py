"""NTT correctness: inversion, convolution theorem, linearity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks import modmath, primes
from repro.ckks.ntt import (NttPlan, bit_reverse_permutation,
                            negacyclic_convolution_reference)

N_SMALL = 32
Q_SMALL = primes.ntt_primes(1, 28, N_SMALL)[0]
Q_WIDE = primes.ntt_primes(1, 40, N_SMALL)[0]  # wide uint64-path plan


@pytest.fixture(scope="module")
def plan():
    return NttPlan(N_SMALL, Q_SMALL)


@pytest.fixture(scope="module")
def wide_plan():
    return NttPlan(N_SMALL, Q_WIDE)


class TestPlanConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            NttPlan(24, Q_SMALL)

    def test_rejects_unfriendly_modulus(self):
        with pytest.raises(ValueError):
            NttPlan(N_SMALL, 97)  # 97 - 1 not divisible by 64

    def test_bit_reverse_is_involution(self):
        for n in (2, 8, 64):
            perm = bit_reverse_permutation(n)
            assert np.array_equal(perm[perm], np.arange(n))


class TestRoundTrip:
    def test_forward_inverse_identity(self, plan, rng):
        x = rng.integers(0, Q_SMALL, N_SMALL)
        assert np.array_equal(plan.inverse(plan.forward(x)),
                              np.mod(x, Q_SMALL))

    def test_inverse_forward_identity(self, plan, rng):
        x = rng.integers(0, Q_SMALL, N_SMALL)
        assert np.array_equal(plan.forward(plan.inverse(x)),
                              np.mod(x, Q_SMALL))

    def test_wide_path_roundtrip(self, wide_plan, rng):
        assert wide_plan.path == modmath.WIDE
        x = [int(v) for v in rng.integers(0, 2**40 - 1, N_SMALL)]
        x = modmath.asresidues(x, Q_WIDE)
        back = wide_plan.inverse(wide_plan.forward(x))
        assert all(int(a) == int(b) for a, b in zip(back, x))

    def test_forced_object_plan_matches_wide(self, wide_plan, rng):
        oracle = NttPlan(N_SMALL, Q_WIDE, path=modmath.OBJECT)
        assert oracle.path == modmath.OBJECT
        x = [int(v) for v in rng.integers(0, Q_WIDE, N_SMALL)]
        fw = wide_plan.forward(modmath.asresidues(x, Q_WIDE))
        fo = oracle.forward(np.array(x, dtype=object))
        assert [int(v) for v in fw] == [int(v) for v in fo]

    def test_wrong_length_rejected(self, plan):
        with pytest.raises(ValueError):
            plan.forward(np.zeros(N_SMALL // 2, dtype=np.int64))


class TestConvolutionTheorem:
    def test_pointwise_equals_negacyclic(self, plan, rng):
        a = rng.integers(0, Q_SMALL, N_SMALL)
        b = rng.integers(0, Q_SMALL, N_SMALL)
        via_ntt = plan.inverse(modmath.mul(plan.forward(a),
                                           plan.forward(b), Q_SMALL))
        ref = negacyclic_convolution_reference(a, b, Q_SMALL)
        assert np.array_equal(via_ntt, ref)

    def test_x_times_x_n_minus_1_is_minus_one(self, plan):
        # X * X^(N-1) = X^N = -1 in the negacyclic ring.
        x = modmath.zeros(N_SMALL, Q_SMALL)
        x[1] = 1
        y = modmath.zeros(N_SMALL, Q_SMALL)
        y[N_SMALL - 1] = 1
        prod = plan.inverse(modmath.mul(plan.forward(x),
                                        plan.forward(y), Q_SMALL))
        expected = modmath.zeros(N_SMALL, Q_SMALL)
        expected[0] = Q_SMALL - 1
        assert np.array_equal(prod, expected)

    def test_multiplication_by_constant_poly(self, plan, rng):
        a = rng.integers(0, Q_SMALL, N_SMALL)
        c = modmath.zeros(N_SMALL, Q_SMALL)
        c[0] = 5
        prod = plan.inverse(modmath.mul(plan.forward(a),
                                        plan.forward(c), Q_SMALL))
        assert np.array_equal(prod, modmath.mul_scalar(a, 5, Q_SMALL))


class TestLinearity:
    def test_forward_is_linear(self, plan, rng):
        a = rng.integers(0, Q_SMALL, N_SMALL)
        b = rng.integers(0, Q_SMALL, N_SMALL)
        lhs = plan.forward(np.mod(a + b, Q_SMALL))
        rhs = modmath.add(plan.forward(a), plan.forward(b), Q_SMALL)
        assert np.array_equal(lhs, rhs)

    def test_forward_scalar_scaling(self, plan, rng):
        a = rng.integers(0, Q_SMALL, N_SMALL)
        lhs = plan.forward(modmath.mul_scalar(a, 11, Q_SMALL))
        rhs = modmath.mul_scalar(plan.forward(a), 11, Q_SMALL)
        assert np.array_equal(lhs, rhs)


@pytest.mark.parametrize("n", [2, 4, 16, 128])
def test_roundtrip_across_sizes(n, rng):
    q = primes.ntt_primes(1, 24, n)[0]
    plan = NttPlan(n, q)
    x = rng.integers(0, q, n)
    assert np.array_equal(plan.inverse(plan.forward(x)), np.mod(x, q))


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_property_convolution_commutes(seed):
    rng = np.random.default_rng(seed)
    plan = NttPlan(N_SMALL, Q_SMALL)
    a = rng.integers(0, Q_SMALL, N_SMALL)
    b = rng.integers(0, Q_SMALL, N_SMALL)
    ab = plan.inverse(modmath.mul(plan.forward(a), plan.forward(b), Q_SMALL))
    ba = plan.inverse(modmath.mul(plan.forward(b), plan.forward(a), Q_SMALL))
    assert np.array_equal(ab, ba)


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_property_parseval_style_energy(seed):
    # The all-ones polynomial evaluates to sum of coefficients * psi^..
    # A cheaper invariant: transform of zero is zero, of delta is
    # a vector of roots (all nonzero).
    rng = np.random.default_rng(seed)
    plan = NttPlan(N_SMALL, Q_SMALL)
    delta = modmath.zeros(N_SMALL, Q_SMALL)
    delta[0] = int(rng.integers(1, Q_SMALL))
    transformed = plan.forward(delta)
    assert all(int(v) == int(delta[0]) for v in transformed)
