"""Property-style roundtrip identities over many seeded random inputs.

Three invariants the accelerator model leans on daily:

* ``intt(ntt(x)) == x`` for every limb (the NTTU's correctness);
* exact CRT compose/decompose is the identity on centred integers
  (decryption and KLSS gadget decomposition depend on it);
* ``decode(encode(z)) ~= z`` within the rounding error budget.

Parametrized across seeds/sizes instead of hypothesis so failures
name their exact input deterministically.
"""

import numpy as np
import pytest

from repro.ckks import rns
from repro.ckks.encoding import decode_from_coeffs, encode_to_coeffs
from repro.ckks.ntt import NttPlan, negacyclic_convolution_reference
from repro.ckks.primes import ntt_primes
from repro.ckks.rns import RnsPoly, compose_crt, from_big_ints

SEEDS = [0, 1, 2, 7, 13, 42, 1234, 99991]


def _basis(n: int, count: int, bits: int = 20) -> tuple[int, ...]:
    return tuple(ntt_primes(count, bits, n))


class TestNttRoundtrip:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n", [8, 32, 128])
    def test_forward_inverse_identity(self, n, seed):
        q = ntt_primes(1, 20, n)[0]
        plan = NttPlan(n, q)
        rng = np.random.default_rng(seed)
        x = rng.integers(0, q, size=n)
        np.testing.assert_array_equal(plan.inverse(plan.forward(x)),
                                      x % q)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_inverse_forward_identity(self, seed):
        n = 32
        q = ntt_primes(1, 20, n)[0]
        plan = NttPlan(n, q)
        rng = np.random.default_rng(seed)
        x = rng.integers(0, q, size=n)
        np.testing.assert_array_equal(plan.forward(plan.inverse(x)),
                                      x % q)

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_pointwise_product_is_negacyclic_convolution(self, seed):
        n = 16
        q = ntt_primes(1, 20, n)[0]
        plan = NttPlan(n, q)
        rng = np.random.default_rng(seed)
        a = rng.integers(0, q, size=n)
        b = rng.integers(0, q, size=n)
        via_ntt = plan.inverse(
            (plan.forward(a) * plan.forward(b)) % q)
        np.testing.assert_array_equal(
            via_ntt, negacyclic_convolution_reference(a, b, q))


class TestCrtRoundtrip:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("limbs", [1, 3, 5])
    def test_compose_decompose_identity(self, limbs, seed):
        import random
        n = 16
        moduli = _basis(n, limbs)
        big_q = rns.product(moduli)
        # Q exceeds 64 bits beyond one limb; stdlib randrange handles
        # arbitrary-precision bounds.  Centred range (-Q/2, Q/2].
        rng = random.Random(seed)
        coeffs = [rng.randrange(-(big_q // 2) + 1, big_q // 2 + 1)
                  for _ in range(n)]
        poly = from_big_ints(coeffs, moduli)
        assert compose_crt(poly) == coeffs

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_decompose_compose_limbwise(self, seed):
        n = 16
        moduli = _basis(n, 4)
        rng = np.random.default_rng(seed)
        coeffs = rng.integers(-(1 << 40), 1 << 40, size=n)
        poly = RnsPoly.from_int_coeffs(coeffs, moduli)
        recomposed = from_big_ints(compose_crt(poly), moduli)
        for a, b in zip(poly.limbs, recomposed.limbs):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_eval_form_detour_preserves_value(self, seed):
        n = 16
        moduli = _basis(n, 3)
        rng = np.random.default_rng(seed)
        coeffs = rng.integers(-(1 << 30), 1 << 30, size=n)
        poly = RnsPoly.from_int_coeffs(coeffs, moduli)
        assert compose_crt(poly.to_eval().to_coeff()) == \
            compose_crt(poly)


class TestSetIIShapedRoundtrip:
    """The same invariants at a real 36-bit Set-II-shaped basis.

    Everything here runs on the wide uint64 Barrett path — this is the
    word length the paper's TBM spends its 36-bit mode on, and the one
    the old int64-only fast path used to push onto object arrays.
    """

    N = 64

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ntt_roundtrip_at_36_bits(self, seed):
        q = ntt_primes(1, 36, self.N)[0]
        plan = NttPlan(self.N, q)
        rng = np.random.default_rng(seed)
        x = rng.integers(0, q, size=self.N, dtype=np.uint64)
        got = plan.inverse(plan.forward(x))
        assert [int(v) for v in got] == [int(v) for v in x]

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_convolution_theorem_at_36_bits(self, seed):
        from repro.ckks import modmath
        q = ntt_primes(1, 36, 16)[0]
        plan = NttPlan(16, q)
        rng = np.random.default_rng(seed)
        a = [int(v) for v in rng.integers(0, q, size=16)]
        b = [int(v) for v in rng.integers(0, q, size=16)]
        # The raw `(fa * fb) % q` of the narrow test would wrap in
        # uint64; wide products must go through modmath.mul.
        via_ntt = plan.inverse(modmath.mul(
            plan.forward(modmath.asresidues(a, q)),
            plan.forward(modmath.asresidues(b, q)), q))
        want = negacyclic_convolution_reference(a, b, q)
        assert [int(v) for v in via_ntt] == [int(v) for v in want]

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_crt_roundtrip_on_wide_basis(self, seed):
        import random
        moduli = tuple(ntt_primes(1, 44, self.N)
                       + ntt_primes(3, 36, self.N))
        big_q = rns.product(moduli)
        rng = random.Random(seed)
        coeffs = [rng.randrange(-(big_q // 2) + 1, big_q // 2 + 1)
                  for _ in range(self.N)]
        poly = from_big_ints(coeffs, moduli, self.N)
        assert compose_crt(poly) == coeffs
        assert compose_crt(poly.to_eval().to_coeff()) == coeffs

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_encrypted_multiply_at_set_ii_mini(self, seed):
        from repro.ckks.context import CkksContext
        from repro.ckks.params import set_ii_mini
        params = set_ii_mini(ring_degree=self.N, max_level=4,
                             boot_levels=2)
        ctx = CkksContext(params, seed=seed)
        rng = np.random.default_rng(seed)
        message = rng.normal(size=params.num_slots)
        ct = ctx.encrypt(message)
        got = ctx.decrypt(ctx.rescale(ctx.multiply(ct, ct)))
        np.testing.assert_allclose(got.real, message ** 2, atol=1e-4)


class TestEncodeDecodeRoundtrip:
    SCALE = float(1 << 30)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n", [16, 64])
    def test_full_slot_roundtrip(self, n, seed):
        rng = np.random.default_rng(seed)
        slots = n // 2
        message = rng.normal(size=slots) + 1j * rng.normal(size=slots)
        coeffs = encode_to_coeffs(message, n, self.SCALE)
        decoded = decode_from_coeffs(coeffs, n, self.SCALE)
        np.testing.assert_allclose(decoded, message, atol=1e-6)

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_sparse_packing_repeats(self, seed):
        n = 64
        rng = np.random.default_rng(seed)
        message = rng.normal(size=8) + 1j * rng.normal(size=8)
        coeffs = encode_to_coeffs(message, n, self.SCALE)
        decoded = decode_from_coeffs(coeffs, n, self.SCALE)
        tiled = np.tile(message, (n // 2) // 8)
        np.testing.assert_allclose(decoded, tiled, atol=1e-6)

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_roundtrip_through_rns(self, seed):
        """encode -> RNS residues -> CRT recompose -> decode."""
        n = 16
        rng = np.random.default_rng(seed)
        message = rng.normal(size=n // 2) + 1j * rng.normal(size=n // 2)
        coeffs = encode_to_coeffs(message, n, self.SCALE)
        moduli = _basis(n, 3, bits=24)
        poly = from_big_ints([int(c) for c in coeffs], moduli)
        recovered = compose_crt(poly)
        decoded = decode_from_coeffs(recovered, n, self.SCALE)
        np.testing.assert_allclose(decoded, message, atol=1e-6)
