"""Matrix-form BConv (software BConvU): exactness, error bound, caches.

The matrix kernel must be *bit-exact* against the per-pair scalar-loop
oracle (:func:`rns.base_convert_reference`) at every datapath width:
the float piece-gemm and the float-quotient reductions are exact by
construction only inside their documented bit budgets, so the width
grid below deliberately straddles each budget boundary (51-bit float
elementwise, 50-bit float reduction, 62-bit lazy-128 tier).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks import modmath, primes, rns
from repro.ckks.ntt import transform_limbs
from repro.ckks.rns import (PLAN_CACHE_MAXSIZE, RnsPoly,
                            base_convert_reference, bconv_plan_cache_info,
                            clear_bconv_plan_cache, get_bconv_plan)
from repro.obs import tracer as obs_tracer

N = 32


def _chain(specs, exclude=(), n=N):
    """A basis from ``[(count, bits), ...]``, disjoint from ``exclude``."""
    found: list[int] = []
    for count, bits in specs:
        found += primes.ntt_primes(count, bits, n,
                                   exclude=set(found) | set(exclude))
    return tuple(found)


def _uniform_poly(rng, moduli, n=N):
    return RnsPoly([modmath.random_uniform(n, q, rng) for q in moduli],
                   moduli, rns.COEFF)


def _assert_bit_exact(got: RnsPoly, want: RnsPoly):
    assert got.moduli == want.moduli
    for a, b in zip(got.limbs, want.limbs):
        assert a.dtype == b.dtype
        np.testing.assert_array_equal(np.asarray(a, dtype=object),
                                      np.asarray(b, dtype=object))


# One entry per datapath tier / budget boundary.  Set-II-mini gate
# shapes (ModUp digit 0/1, ModDown) appear verbatim.
WIDTH_CASES = [
    pytest.param([(4, 28)], [(3, 28)], id="toy-28"),
    pytest.param([(3, 30)], [(4, 30)], id="narrow-30"),
    pytest.param([(1, 44), (4, 36)], [(7, 36)], id="set2mini-modup-d0"),
    pytest.param([(2, 36)], [(1, 44), (9, 36)], id="set2mini-modup-d1"),
    pytest.param([(5, 37)], [(1, 44), (6, 36)], id="set2mini-moddown"),
    pytest.param([(1, 36)], [(6, 36)], id="rescale-single-src"),
    pytest.param([(3, 51)], [(3, 51)], id="float-ew-edge-51"),
    pytest.param([(3, 52)], [(3, 52)], id="past-float-ew-52"),
    pytest.param([(2, 60)], [(3, 60)], id="klss-wide-60"),
    pytest.param([(2, 62)], [(2, 62)], id="uint64-edge-62"),
]


class TestMatrixBitExact:
    @pytest.mark.parametrize("src_spec,dst_spec", WIDTH_CASES)
    def test_matches_oracle_on_random_input(self, rng, src_spec, dst_spec):
        src = _chain(src_spec)
        dst = _chain(dst_spec, exclude=src)
        plan = get_bconv_plan(src, dst)
        assert plan.matrix_path, "width grid case must ride the matrix path"
        poly = _uniform_poly(rng, src)
        _assert_bit_exact(rns.base_convert(poly, dst),
                          base_convert_reference(poly, dst))

    @pytest.mark.parametrize("src_spec,dst_spec", WIDTH_CASES)
    def test_matches_oracle_on_extremal_residues(self, src_spec, dst_spec):
        # All-(q-1) limbs maximise every intermediate magnitude; any
        # overflow in the piece-gemm or the float-quotient fixups
        # shows up here first.
        src = _chain(src_spec)
        dst = _chain(dst_spec, exclude=src)
        limbs = [modmath.asresidues(np.full(N, q - 1, dtype=np.uint64), q)
                 for q in src]
        poly = RnsPoly(limbs, src, rns.COEFF)
        _assert_bit_exact(rns.base_convert(poly, dst),
                          base_convert_reference(poly, dst))
        zero = RnsPoly.zeros(N, src)
        _assert_bit_exact(rns.base_convert(zero, dst),
                          base_convert_reference(zero, dst))

    def test_object_modulus_falls_back_to_oracle(self, rng):
        # >62-bit moduli are beyond the uint64 datapath: the plan must
        # refuse the matrix path and base_convert must still agree with
        # the oracle (it *is* the oracle there).
        wide = primes.ntt_primes(1, 66, N)
        src = wide + list(primes.ntt_primes(2, 36, N))
        dst = _chain([(3, 36)], exclude=src)
        assert not get_bconv_plan(tuple(src), dst).matrix_path
        poly = _uniform_poly(rng, tuple(src))
        _assert_bit_exact(rns.base_convert(poly, dst),
                          base_convert_reference(poly, dst))

    def test_requires_coeff_form(self, rng):
        src = _chain([(3, 28)])
        poly = _uniform_poly(rng, src).to_eval()
        with pytest.raises(ValueError):
            rns.base_convert(poly, _chain([(2, 28)], exclude=src))


@given(seed=st.integers(0, 2**32 - 1), k_in=st.integers(1, 5),
       k_out=st.integers(1, 4), bits=st.sampled_from([26, 36, 44]),
       skip=st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_property_result_is_x_plus_e_times_q(seed, k_in, k_out, bits, skip):
    """HPS bound: output == x + e*Q (mod p_j) for ONE integer e in [0, k).

    The same ``e`` must hold across all target primes: we reconstruct
    the exact integer v = sum_i y_i * (Q/q_i) that the conversion
    approximates, check the kernel's limbs equal ``v mod p_j``
    bit-for-bit, and check ``e = v // Q`` stays below k.  ``skip``
    shifts the prime window so bases vary beyond their widths.
    """
    n = 16
    rng = np.random.default_rng(seed)
    pool = primes.ntt_primes(k_in + k_out + skip, bits, n)
    src = tuple(pool[skip:skip + k_in])
    dst = tuple(pool[skip + k_in:skip + k_in + k_out])
    big_q, q_hat, q_hat_inv = rns._crt_constants(src)
    poly = _uniform_poly(rng, src, n=n)
    out = rns.base_convert(poly, dst)
    for idx in range(n):
        v = sum(int(limb[idx]) * inv % q * hat
                for limb, q, hat, inv in zip(poly.limbs, src,
                                             q_hat, q_hat_inv))
        e = v // big_q
        assert 0 <= e < max(len(src), 1)
        for p, limb in zip(dst, out.limbs):
            assert int(limb[idx]) == v % p


# -- ModDown / exact_rescale after the matrix rewrite ---------------------

def _mod_down_reference(poly: RnsPoly, main_count: int) -> RnsPoly:
    """Pre-plan ModDown: oracle conversion + per-call inv_mod scalars."""
    q_moduli = poly.moduli[:main_count]
    p_moduli = poly.moduli[main_count:]
    aux = RnsPoly(poly.limbs[main_count:], p_moduli, rns.COEFF)
    approx = base_convert_reference(aux, q_moduli)
    big_p = rns.product(p_moduli)
    out = []
    for limb, conv, q in zip(poly.limbs, approx.limbs, q_moduli):
        inv = modmath.inv_mod(big_p % q, q)
        out.append(modmath.mul_scalar(modmath.sub(limb, conv, q), inv, q))
    return RnsPoly(out, q_moduli, rns.COEFF)


def _exact_rescale_reference(poly: RnsPoly) -> RnsPoly:
    """Pre-plan rescale: asresidues fold + per-call inv_mod scalars."""
    last_q, last_limb = poly.moduli[-1], poly.limbs[-1]
    front = poly.moduli[:-1]
    out = []
    for limb, q in zip(poly.limbs[:-1], front):
        fold = modmath.asresidues(last_limb, q)
        inv = modmath.inv_mod(last_q % q, q)
        out.append(modmath.mul_scalar(modmath.sub(limb, fold, q), inv, q))
    return RnsPoly(out, front, rns.COEFF)


class TestModDownRescaleSlack:
    # Set-II-mini widths: 44-bit first prime, 36-bit chain, 37-bit specials.
    MAIN = _chain([(1, 44), (6, 36)])
    AUX = _chain([(5, 37)], exclude=MAIN)

    def test_mod_down_bit_exact_vs_reference_pipeline(self, rng):
        poly = _uniform_poly(rng, self.MAIN + self.AUX)
        _assert_bit_exact(rns.mod_down(poly, len(self.MAIN)),
                          _mod_down_reference(poly, len(self.MAIN)))

    def test_mod_down_slack_within_documented_bound(self, rng):
        # round(P*x + noise / P) must land within len(aux)+1 of x — the
        # BConv slack (e < k) plus the rounding unit.
        big_p = rns.product(self.AUX)
        x = [int(rng.integers(-10**6, 10**6)) for _ in range(N)]
        noisy = [c * big_p + int(rng.integers(-1000, 1000)) for c in x]
        poly = rns.from_big_ints(noisy, self.MAIN + self.AUX, N)
        got = rns.compose_crt(rns.mod_down(poly, len(self.MAIN)))
        assert all(abs(g - c) <= len(self.AUX) + 1 for g, c in zip(got, x))

    def test_exact_rescale_bit_exact_vs_reference_pipeline(self, rng):
        poly = _uniform_poly(rng, self.MAIN)
        _assert_bit_exact(rns.exact_rescale(poly),
                          _exact_rescale_reference(poly))

    def test_exact_rescale_divides_exactly(self, rng):
        last = self.MAIN[-1]
        coeffs = [int(rng.integers(-10**9, 10**9)) * last for _ in range(N)]
        poly = rns.from_big_ints(coeffs, self.MAIN, N)
        got = rns.exact_rescale(poly)
        assert got.moduli == self.MAIN[:-1]
        assert rns.compose_crt(got) == [c // last for c in coeffs]


# -- plan cache: bound, eviction correctness, counters --------------------

@pytest.fixture()
def _fresh_bconv_cache():
    clear_bconv_plan_cache()
    yield
    clear_bconv_plan_cache()


class TestBConvPlanCache:
    def test_cache_has_explicit_maxsize(self):
        info = bconv_plan_cache_info()
        assert info.maxsize == PLAN_CACHE_MAXSIZE
        assert info.maxsize is not None and info.maxsize > 0

    def test_eviction_happens_beyond_maxsize(self, _fresh_bconv_cache):
        pool = primes.ntt_primes(PLAN_CACHE_MAXSIZE + 9, 18, 8)
        anchor = (pool[0],)
        for p in pool[1:]:
            get_bconv_plan(anchor, (p,))
        info = bconv_plan_cache_info()
        assert info.currsize == PLAN_CACHE_MAXSIZE
        assert info.misses >= PLAN_CACHE_MAXSIZE + 8

    def test_rebuilt_plan_is_bit_exact_after_churn(self, rng,
                                                   _fresh_bconv_cache):
        pool = primes.ntt_primes(PLAN_CACHE_MAXSIZE + 9, 18, 8)
        src = _chain([(3, 28)])
        dst = _chain([(3, 28)], exclude=src)
        poly = _uniform_poly(rng, src)
        first = get_bconv_plan(src, dst)
        before = rns.base_convert(poly, dst)
        for p in pool[1:]:            # churn: evicts the (src, dst) plan
            get_bconv_plan((pool[0],), (p,))
        rebuilt = get_bconv_plan(src, dst)
        assert rebuilt is not first   # it really was evicted
        _assert_bit_exact(rns.base_convert(poly, dst), before)

    def test_plan_shared_until_evicted(self, _fresh_bconv_cache):
        src = _chain([(2, 28)])
        dst = _chain([(2, 28)], exclude=src)
        assert get_bconv_plan(src, dst) is get_bconv_plan(src, dst)
        assert bconv_plan_cache_info().hits >= 1

    def test_hit_miss_counters(self, _fresh_bconv_cache):
        src = _chain([(2, 28)])
        dst = _chain([(2, 28)], exclude=src)
        tracer = obs_tracer.configure(enabled=True, reset=True)
        try:
            get_bconv_plan(src, dst)
            get_bconv_plan(src, dst)
            get_bconv_plan(src, dst)
            assert tracer.counter_value("rns.bconv.plan_miss") == 1
            assert tracer.counter_value("rns.bconv.plan_hit") == 2
        finally:
            obs_tracer.configure(enabled=False, reset=True)

    def test_matrix_and_fallback_counters(self, rng, _fresh_bconv_cache):
        src = _chain([(2, 28)])
        dst = _chain([(2, 28)], exclude=src)
        wide = tuple(primes.ntt_primes(2, 66, N))
        tracer = obs_tracer.configure(enabled=True, reset=True)
        try:
            rns.base_convert(_uniform_poly(rng, src), dst)
            rns.base_convert(_uniform_poly(rng, wide), dst)
            assert tracer.counter_value("rns.bconv.matrix") == 1
            assert tracer.counter_value("rns.bconv.object_fallback") == 1
            assert tracer.counter_value("rns.base_convert") == 2
        finally:
            obs_tracer.configure(enabled=False, reset=True)


# -- duplicate-moduli guard (mod_up mis-pair regression) ------------------

class TestDuplicateModuliGuard:
    def test_init_rejects_duplicate_moduli(self):
        q = primes.ntt_primes(1, 28, N)[0]
        limbs = [modmath.zeros(N, q), modmath.zeros(N, q)]
        with pytest.raises(ValueError, match="duplicate moduli"):
            RnsPoly(limbs, (q, q), rns.COEFF)

    def test_mod_up_complement_cannot_mispair(self, rng):
        # mod_up navigates the digit complement by modulus *value*
        # (``q not in own``); with the guard in place, a basis that
        # would mis-pair limbs can never be constructed, so every
        # extended digit keeps its own limbs verbatim.
        moduli = _chain([(4, 28)])
        aux = _chain([(2, 28)], exclude=moduli)
        poly = _uniform_poly(rng, moduli)
        digits = [[0, 1], [2, 3]]
        extended = rns.mod_up(poly, digits, moduli, aux)
        order = moduli + aux
        for indices, ext in zip(digits, extended):
            assert ext.moduli == order
            for i in indices:
                own = ext.limbs[order.index(moduli[i])]
                np.testing.assert_array_equal(own, poly.limbs[i])


# -- batched multi-limb NTT ----------------------------------------------

class TestTransformLimbs:
    def test_forward_matches_per_limb_plans(self, rng):
        moduli = _chain([(2, 28), (1, 44), (1, 36)])
        limbs = [modmath.random_uniform(N, q, rng) for q in moduli]
        batched = transform_limbs([limb.copy() for limb in limbs],
                                  moduli, N)
        for q, limb, got in zip(moduli, limbs, batched):
            np.testing.assert_array_equal(
                got, rns.get_plan(N, q).forward(limb))

    def test_inverse_roundtrip(self, rng):
        moduli = _chain([(3, 28), (1, 36)])
        limbs = [modmath.random_uniform(N, q, rng) for q in moduli]
        fwd = transform_limbs([limb.copy() for limb in limbs], moduli, N)
        back = transform_limbs(fwd, moduli, N, inverse=True)
        for limb, got in zip(limbs, back):
            np.testing.assert_array_equal(got, limb)

    def test_to_eval_agrees_with_per_limb_path(self, rng):
        moduli = _chain([(3, 28)])
        poly = _uniform_poly(rng, moduli)
        multi = poly.to_eval()
        for q, limb, got in zip(moduli, poly.limbs, multi.limbs):
            np.testing.assert_array_equal(
                got, rns.get_plan(N, q).forward(limb))
        back = multi.to_coeff()
        _assert_bit_exact(back, poly)
