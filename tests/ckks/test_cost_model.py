"""The analytic cost model: paper anchors, monotonicity, shapes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks.keyswitch import cost
from repro.ckks.params import SET_I, SET_II, toy_params


class TestKernelOps:
    def test_total_sums_kernels(self):
        ops = cost.KernelOps(ntt=1, bconv=2, keymult=3, elementwise=4)
        assert ops.total == 10

    def test_add(self):
        a = cost.KernelOps(ntt=1, bconv=2)
        b = cost.KernelOps(keymult=3, elementwise=4)
        c = a + b
        assert (c.ntt, c.bconv, c.keymult, c.elementwise) == (1, 2, 3, 4)

    def test_scaled(self):
        a = cost.KernelOps(ntt=2, bconv=4).scaled(0.5)
        assert a.ntt == 1 and a.bconv == 2

    def test_as_dict(self):
        d = cost.KernelOps(ntt=1).as_dict()
        assert d["ntt"] == 1 and d["total"] == 1


class TestPrimitiveCosts:
    def test_ntt_ops_formula(self):
        assert cost.ntt_ops(8) == 4 * 3 + 8

    def test_bconv_ops_formula(self):
        assert cost.bconv_ops(16, 3, 5) == 16 * 3 * 6


class TestShapes:
    def test_hybrid_shape_level_aware_specials(self):
        # At low levels the effective special count shrinks with the
        # largest digit (level-aware framework).
        s = cost.HybridShape.at_level(SET_I, 3)
        assert s.p == min(SET_I.num_special_primes, 4)
        s35 = cost.HybridShape.at_level(SET_I, 35)
        assert s35.p == SET_I.num_special_primes

    def test_hybrid_digit_sizes_sum_to_k(self):
        for level in (0, 7, 23, 35):
            s = cost.HybridShape.at_level(SET_I, level)
            assert sum(s.digit_sizes) == s.k
            assert len(s.digit_sizes) == s.beta

    def test_klss_shape_set_ii(self):
        s = cost.KlssShape.at_level(SET_II, 35)
        assert s.k == 36
        assert s.beta == 8                      # ceil(36/5)
        assert s.alpha_prime == 9               # ceil(14*36/60)
        assert s.beta_tilde == 27               # ceil(45*36/60)
        assert s.beta_tilde_groups == 5         # ceil(45/9)

    def test_klss_wide_per_narrow(self):
        s = cost.KlssShape.at_level(SET_II, 10)
        assert s.wide_per_narrow == 2           # ceil(60/36)


class TestPaperAnchors:
    """The calibration targets from Fig. 2 and Fig. 3b."""

    def test_klss_advantage_at_high_levels(self):
        qline = [cost.quantitative_line(SET_I, SET_II, l)
                 for l in range(25, 36)]
        advantage = 1 - 1 / np.mean(qline)
        assert 0.10 < advantage < 0.20          # paper: 15.2%

    def test_hybrid_advantage_at_low_levels(self):
        qline = [cost.quantitative_line(SET_I, SET_II, l)
                 for l in range(5, 13)]
        advantage = 1 - np.mean(qline)
        assert 0.15 < advantage < 0.30          # paper: 23.5%

    def test_ciphertext_size_anchor(self):
        mb = cost.ciphertext_bytes(SET_I, 35) / cost.MB
        assert mb == pytest.approx(19.7, rel=0.02)

    def test_hybrid_evk_anchor(self):
        mb = cost.hybrid_evk_bytes(SET_I, 35) / cost.MB
        assert mb == pytest.approx(79.3, rel=0.05)

    def test_klss_evk_anchor(self):
        mb = cost.klss_evk_bytes(SET_II, 35) / cost.MB
        assert mb == pytest.approx(295.3, rel=0.06)

    def test_klss_keymult_exceeds_hybrid(self):
        # Sec. 3.1: the KLSS KeyMult load increases significantly.
        for level in (15, 25, 35):
            assert cost.klss_keymult_ops(SET_II, level).keymult > \
                cost.hybrid_keymult_ops(SET_I, level).keymult

    def test_hoisting_shifts_balance_to_hybrid(self):
        # Fig. 3a: more hoisting => KLSS relatively worse.
        lines = [cost.quantitative_line(SET_I, SET_II, 30, h)
                 for h in (1, 2, 4, 6)]
        assert lines == sorted(lines, reverse=True)


class TestMonotonicity:
    @pytest.mark.parametrize("method,params", [("hybrid", SET_I),
                                               ("klss", SET_II)])
    def test_cost_increases_with_level(self, method, params):
        totals = [cost.keyswitch_ops(method, params, l).total
                  for l in range(1, 36)]
        # allow tiny local plateaus but require overall growth
        assert totals[-1] > totals[0] * 3
        assert all(b >= a * 0.85 for a, b in zip(totals, totals[1:]))

    def test_hoisting_cheaper_than_individual(self):
        for method, params in (("hybrid", SET_I), ("klss", SET_II)):
            h = 4
            fused = cost.keyswitch_ops(method, params, 20, hoisting=h)
            single = cost.keyswitch_ops(method, params, 20, hoisting=1)
            assert fused.total < h * single.total

    def test_hoisting_saving_is_decompose(self):
        h = 3
        fused = cost.hybrid_keyswitch_ops(SET_I, 20, hoisting=h).total
        single = cost.hybrid_keyswitch_ops(SET_I, 20).total
        shared = cost.hybrid_decompose_ops(SET_I, 20).total
        assert fused == pytest.approx(h * single - (h - 1) * shared)

    def test_working_set_monotone_in_cts(self):
        a = cost.working_set_bytes("hybrid", SET_I, 20, 4)
        b = cost.working_set_bytes("hybrid", SET_I, 20, 8)
        assert b > a

    def test_evk_bytes_scale_with_hoisting(self):
        one = cost.evk_bytes("hybrid", SET_I, 20, hoisting=1)
        four = cost.evk_bytes("hybrid", SET_I, 20, hoisting=4)
        assert four == pytest.approx(4 * one)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            cost.keyswitch_ops("rsa", SET_I, 5)
        with pytest.raises(ValueError):
            cost.evk_bytes("rsa", SET_I, 5)


class TestSplits:
    @pytest.mark.parametrize("level", [3, 17, 35])
    def test_klss_decompose_split_sums(self, level):
        narrow, wide = cost.klss_decompose_split(SET_II, level)
        whole = cost.klss_decompose_ops(SET_II, level)
        assert narrow.total + wide.total == pytest.approx(whole.total)
        assert narrow.bconv == 0  # input INTT only

    @pytest.mark.parametrize("level", [3, 17, 35])
    def test_klss_recover_split_sums(self, level):
        narrow, wide = cost.klss_recover_split(SET_II, level)
        whole = cost.klss_recover_ops(SET_II, level)
        assert narrow.total + wide.total == pytest.approx(whole.total)
        assert wide.bconv == 0  # ModDown BConv is narrow

    def test_minks_key_smaller_than_full(self):
        assert cost.minks_key_bytes(SET_I) < \
            cost.hybrid_evk_bytes(SET_I, 35)


@given(st.integers(1, 35), st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_property_costs_positive_and_finite(level, h):
    for method, params in (("hybrid", SET_I), ("klss", SET_II)):
        ops = cost.keyswitch_ops(method, params, level, hoisting=h)
        assert ops.total > 0
        assert all(v >= 0 for v in (ops.ntt, ops.bconv, ops.keymult,
                                    ops.elementwise))


@given(st.integers(1, 35))
@settings(max_examples=35, deadline=None)
def test_property_quantitative_line_positive(level):
    q = cost.quantitative_line(SET_I, SET_II, level)
    assert 0.1 < q < 3.0


def test_toy_params_cost_model_runs():
    params = toy_params()
    ops = cost.keyswitch_ops("hybrid", params, params.max_level)
    assert ops.total > 0
