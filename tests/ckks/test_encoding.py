"""Canonical-embedding encoder: round trips, slots, Galois action."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks import encoding

N = 32
SLOTS = N // 2
SCALE = float(2 ** 28)


class TestRoundTrip:
    def test_real_vector(self, rng):
        msg = rng.uniform(-3, 3, SLOTS)
        coeffs = encoding.encode_to_coeffs(msg, N, SCALE)
        back = encoding.decode_from_coeffs(coeffs, N, SCALE)
        assert np.max(np.abs(back - msg)) < 1e-6

    def test_complex_vector(self, rng):
        msg = rng.uniform(-1, 1, SLOTS) + 1j * rng.uniform(-1, 1, SLOTS)
        coeffs = encoding.encode_to_coeffs(msg, N, SCALE)
        back = encoding.decode_from_coeffs(coeffs, N, SCALE)
        assert np.max(np.abs(back - msg)) < 1e-6

    def test_short_vector_tiles(self, rng):
        msg = np.array([1.0, -2.0, 0.5, 4.0])
        coeffs = encoding.encode_to_coeffs(msg, N, SCALE)
        back = encoding.decode_from_coeffs(coeffs, N, SCALE)
        assert np.max(np.abs(back - np.tile(msg, SLOTS // 4))) < 1e-6

    def test_coefficients_are_python_ints(self):
        coeffs = encoding.encode_to_coeffs([1.0], N, SCALE)
        assert coeffs.dtype == object
        assert all(isinstance(int(c), int) for c in coeffs)

    def test_scaling_factor_applied(self):
        coeffs = encoding.encode_to_coeffs([1.0], N, SCALE)
        # constant vector 1.0 encodes to constant polynomial Delta
        assert abs(int(coeffs[0]) - SCALE) <= 1
        assert all(abs(int(c)) <= 1 for c in coeffs[1:])

    def test_precision_improves_with_scale(self, rng):
        msg = rng.uniform(-1, 1, SLOTS)
        errs = []
        for bits in (12, 20, 28):
            scale = float(2 ** bits)
            coeffs = encoding.encode_to_coeffs(msg, N, scale)
            back = encoding.decode_from_coeffs(coeffs, N, scale)
            errs.append(np.max(np.abs(back - msg)))
        assert errs[0] > errs[1] > errs[2]


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            encoding.encode_to_coeffs([], N, SCALE)

    def test_oversized_rejected(self):
        with pytest.raises(ValueError):
            encoding.encode_to_coeffs(np.ones(SLOTS + 1), N, SCALE)

    def test_non_divisor_length_rejected(self):
        with pytest.raises(ValueError):
            encoding.encode_to_coeffs(np.ones(3), N, SCALE)


class TestGaloisElements:
    def test_rotation_element_is_power_of_5(self):
        assert encoding.rotation_galois_element(N, 1) == 5
        assert encoding.rotation_galois_element(N, 2) == 25 % (2 * N)

    def test_rotation_element_wraps_at_slot_count(self):
        assert encoding.rotation_galois_element(N, SLOTS) == \
            encoding.rotation_galois_element(N, 0)

    def test_conjugation_element(self):
        assert encoding.conjugation_galois_element(N) == 2 * N - 1

    def test_rotation_moves_slots_left(self, rng):
        """Slot semantics via raw coefficients: encode, apply the
        Galois map to the coefficients, decode, compare to roll."""
        from repro.ckks import rns, primes
        msg = rng.uniform(-1, 1, SLOTS)
        coeffs = encoding.encode_to_coeffs(msg, N, SCALE)
        moduli = primes.ntt_primes(2, 28, N)
        poly = rns.from_big_ints(list(coeffs), moduli, N)
        g = encoding.rotation_galois_element(N, 3)
        rotated = rns.compose_crt(poly.automorphism(g))
        back = encoding.decode_from_coeffs(rotated, N, SCALE)
        assert np.max(np.abs(back - np.roll(msg, -3))) < 1e-5

    def test_conjugation_conjugates_slots(self, rng):
        from repro.ckks import rns, primes
        msg = rng.uniform(-1, 1, SLOTS) + 1j * rng.uniform(-1, 1, SLOTS)
        coeffs = encoding.encode_to_coeffs(msg, N, SCALE)
        moduli = primes.ntt_primes(2, 28, N)
        poly = rns.from_big_ints(list(coeffs), moduli, N)
        g = encoding.conjugation_galois_element(N)
        conj = rns.compose_crt(poly.automorphism(g))
        back = encoding.decode_from_coeffs(conj, N, SCALE)
        assert np.max(np.abs(back - np.conj(msg))) < 1e-5


class TestHomomorphicStructure:
    def test_encoding_is_additive(self, rng):
        a = rng.uniform(-1, 1, SLOTS)
        b = rng.uniform(-1, 1, SLOTS)
        ca = encoding.encode_to_coeffs(a, N, SCALE)
        cb = encoding.encode_to_coeffs(b, N, SCALE)
        summed = np.array([int(x) + int(y) for x, y in zip(ca, cb)],
                          dtype=object)
        back = encoding.decode_from_coeffs(summed, N, SCALE)
        assert np.max(np.abs(back - (a + b))) < 1e-5

    def test_negacyclic_product_multiplies_slots(self, rng):
        a = rng.uniform(-1, 1, SLOTS)
        b = rng.uniform(-1, 1, SLOTS)
        ca = encoding.encode_to_coeffs(a, N, SCALE)
        cb = encoding.encode_to_coeffs(b, N, SCALE)
        prod = [0] * N
        for i in range(N):
            for j in range(N):
                k, sgn = (i + j, 1) if i + j < N else (i + j - N, -1)
                prod[k] += sgn * int(ca[i]) * int(cb[j])
        back = encoding.decode_from_coeffs(
            np.array(prod, dtype=object), N, SCALE * SCALE)
        assert np.max(np.abs(back - a * b)) < 1e-4


@given(st.integers(0, 2**32 - 1), st.sampled_from([8, 32, 128]))
@settings(max_examples=40, deadline=None)
def test_property_roundtrip_any_ring(seed, n):
    rng = np.random.default_rng(seed)
    msg = rng.uniform(-2, 2, n // 2)
    coeffs = encoding.encode_to_coeffs(msg, n, SCALE)
    back = encoding.decode_from_coeffs(coeffs, n, SCALE)
    assert np.max(np.abs(back - msg)) < 1e-5
