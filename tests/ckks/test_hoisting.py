"""Hoisted rotations: batching, bit-exactness oracles, key validation."""

import numpy as np
import pytest

from repro import obs
from repro.ckks import CkksContext, rns, toy_params
from repro.ckks.keys import HYBRID, KLSS
from repro.ckks.keyswitch.hoisting import (hoisted_rotations,
                                           hoisted_rotations_reference,
                                           validate_hoisting_keys)
from repro.ckks.keyswitch.hybrid import (hybrid_decompose,
                                         key_mult_accumulate,
                                         mod_down_batch, mod_down_pair)
from repro.ckks import encoding

STEPS = [1, 2, 5]


@pytest.fixture(scope="module")
def ctx():
    return CkksContext(toy_params(ring_degree=32, max_level=4, alpha=2,
                                  prime_bits=28), seed=11)


@pytest.fixture(scope="module")
def ct(ctx):
    msg = np.arange(ctx.params.num_slots) / ctx.params.num_slots
    return ctx.encrypt(msg)


def _galois(ctx, steps):
    return [encoding.rotation_galois_element(ctx.params.ring_degree, s)
            for s in steps]


def _keys(ctx, method, galois, level=None):
    level = ctx.params.max_level if level is None else level
    return {g: ctx.evaluation_key(method, level, ("galois", g))
            for g in galois}


def _assert_ct_equal(a, b):
    for pa, pb in ((a.c0, b.c0), (a.c1, b.c1)):
        assert pa.moduli == pb.moduli and pa.form == pb.form
        for x, y in zip(pa.limbs, pb.limbs):
            np.testing.assert_array_equal(x, y)


class TestBitExactness:
    @pytest.mark.parametrize("method", [HYBRID, KLSS])
    def test_matches_reference_pipeline(self, ctx, ct, method):
        """New pipeline vs the pre-plan oracle: bit-identical."""
        gal = _galois(ctx, STEPS)
        keys = _keys(ctx, method, gal)
        new = hoisted_rotations(ct, gal, keys, ctx.params.alpha)
        ref = hoisted_rotations_reference(ct, gal, keys, ctx.params.alpha)
        for a, b in zip(new, ref):
            _assert_ct_equal(a, b)

    def test_klss_matches_per_rotation_rotate(self, ctx, ct):
        """KLSS decomposition is exact, so hoisting commutes with the
        automorphism bit for bit."""
        hoisted = ctx.hoisted_rotate(ct, STEPS, method="klss")
        for s, h in zip(STEPS, hoisted):
            _assert_ct_equal(h, ctx.rotate(ct, s, method="klss"))

    def test_hybrid_matches_per_rotation_noise(self, ctx, ct):
        """Hybrid ModUp is approximate (BConv slack), so hoisting is
        only noise-equivalent to per-rotation rotation — both must
        decrypt to the rotated message."""
        msg = np.arange(ctx.params.num_slots) / ctx.params.num_slots
        hoisted = ctx.hoisted_rotate(ct, STEPS, method="hybrid")
        for s, h in zip(STEPS, hoisted):
            assert ctx.noise_infinity(h, np.roll(msg, -s)) < 1e-4
            single = ctx.rotate(ct, s, method="hybrid")
            assert ctx.noise_infinity(single, np.roll(msg, -s)) < 1e-4

    def test_conjugation_in_batch(self, ctx, ct):
        g_conj = encoding.conjugation_galois_element(ctx.params.ring_degree)
        gal = _galois(ctx, [1]) + [g_conj]
        keys = _keys(ctx, HYBRID, gal)
        new = hoisted_rotations(ct, gal, keys, ctx.params.alpha)
        ref = hoisted_rotations_reference(ct, gal, keys, ctx.params.alpha)
        for a, b in zip(new, ref):
            _assert_ct_equal(a, b)

    def test_empty_batch(self, ctx, ct):
        assert hoisted_rotations(ct, [], {}, ctx.params.alpha) == []


class TestModDownBatch:
    def test_batch_matches_pairwise(self, ctx):
        """One batched ModDown vs pair-at-a-time: bit-identical."""
        level = ctx.params.max_level
        key = ctx.evaluation_key(HYBRID, level, "mult")
        rng = np.random.default_rng(8)
        pairs = []
        for seed in range(3):
            coeffs = [int(v) for v in rng.integers(-10**6, 10**6,
                                                   size=ctx.params.ring_degree)]
            poly = rns.from_big_ints(coeffs, ctx.moduli_at(level),
                                     ctx.params.ring_degree)
            digits = hybrid_decompose(poly, key, ctx.params.alpha)
            pairs.append(key_mult_accumulate(digits, key))
        batched = mod_down_batch(pairs, key.aux_count)
        for (acc0, acc1), (got0, got1) in zip(pairs, batched):
            ref0, ref1 = mod_down_pair(acc0, acc1, key.aux_count)
            for got, ref in ((got0, ref0), (got1, ref1)):
                assert got.moduli == ref.moduli and got.form == ref.form
                for x, y in zip(got.limbs, ref.limbs):
                    np.testing.assert_array_equal(x, y)

    def test_mismatched_bases_rejected(self, ctx):
        level = ctx.params.max_level
        key = ctx.evaluation_key(HYBRID, level, "mult")
        poly = rns.from_big_ints([1] * ctx.params.ring_degree,
                                 ctx.moduli_at(level),
                                 ctx.params.ring_degree)
        digits = hybrid_decompose(poly, key, ctx.params.alpha)
        acc0, acc1 = key_mult_accumulate(digits, key)
        other = rns.from_big_ints([1] * ctx.params.ring_degree,
                                  ctx.moduli_at(1),
                                  ctx.params.ring_degree).to_eval()
        with pytest.raises(ValueError):
            mod_down_batch([(acc0, acc1), (other, other)], key.aux_count)


class TestKeyValidation:
    def test_accepts_uniform_geometry(self, ctx):
        gal = _galois(ctx, STEPS)
        keys = _keys(ctx, HYBRID, gal)
        assert validate_hoisting_keys(gal, keys) is keys[gal[0]]

    def test_names_mismatched_galois_element(self, ctx):
        """Error must say which key diverges and in which fields."""
        gal = _galois(ctx, STEPS)
        keys = _keys(ctx, HYBRID, gal)
        keys[gal[-1]] = ctx.evaluation_key(KLSS, ctx.params.max_level,
                                           ("galois", gal[-1]))
        with pytest.raises(ValueError) as exc:
            validate_hoisting_keys(gal, keys)
        message = str(exc.value)
        assert f"g={gal[-1]}" in message
        assert "method" in message
        assert f"reference g={gal[0]}" in message

    def test_names_level_mismatch(self, ctx):
        """A key generated at the wrong level diverges in its basis."""
        gal = _galois(ctx, STEPS)
        keys = _keys(ctx, HYBRID, gal)
        keys[gal[1]] = ctx.evaluation_key(HYBRID, 2, ("galois", gal[1]))
        with pytest.raises(ValueError, match=f"g={gal[1]}.*moduli"):
            validate_hoisting_keys(gal, keys)

    def test_mixed_keys_rejected_by_hoisted_rotations(self, ctx, ct):
        gal = _galois(ctx, STEPS)
        keys = _keys(ctx, HYBRID, gal)
        keys[gal[0]] = ctx.evaluation_key(KLSS, ctx.params.max_level,
                                          ("galois", gal[0]))
        with pytest.raises(ValueError):
            hoisted_rotations(ct, gal, keys, ctx.params.alpha)


class TestHoistedRotateDedup:
    def test_repeated_steps_share_work(self, ctx, ct):
        outs = ctx.hoisted_rotate(ct, [1, 2, 1], method="hybrid")
        _assert_ct_equal(outs[0], outs[2])
        assert outs[0] is not outs[2]       # copies, not aliases

    def test_counters(self, ctx, ct):
        gal = _galois(ctx, STEPS)
        keys = _keys(ctx, HYBRID, gal)
        hoisted_rotations(ct, gal, keys, ctx.params.alpha)  # warm plans
        obs.configure(enabled=True, reset=True)
        try:
            hoisted_rotations(ct, gal, keys, ctx.params.alpha)
            counters = obs.snapshot(obs.get_tracer())["counters"]
            assert counters["keyswitch.hoisting.batch"] == 1
            assert counters["keyswitch.hoisting.rotations"] == len(STEPS)
            assert counters["keyswitch.hoisting.auto_gather"] == len(STEPS)
        finally:
            obs.configure(enabled=False, reset=True)
