"""Hypothesis property tests on the scheme's algebraic structure.

A shared module-level context keeps key generation out of the
per-example cost; messages are drawn per example.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ckks import CkksContext, toy_params

CTX = CkksContext(toy_params(ring_degree=32, max_level=4, alpha=2,
                             prime_bits=28, scale_bits=26), seed=77)
SLOTS = CTX.params.num_slots
TOL = 1e-3

finite = st.floats(min_value=-2.0, max_value=2.0,
                   allow_nan=False, allow_infinity=False)
vectors = st.lists(finite, min_size=SLOTS, max_size=SLOTS)


def enc(values):
    return CTX.encrypt(np.asarray(values))


def dec(ct):
    return CTX.decrypt(ct).real


@given(vectors)
@settings(max_examples=15, deadline=None)
def test_encrypt_decrypt_identity(v):
    assert np.max(np.abs(dec(enc(v)) - v)) < TOL


@given(vectors, vectors)
@settings(max_examples=12, deadline=None)
def test_addition_homomorphism(a, b):
    got = dec(CTX.add(enc(a), enc(b)))
    assert np.max(np.abs(got - (np.asarray(a) + b))) < TOL


@given(vectors, vectors)
@settings(max_examples=8, deadline=None)
def test_multiplication_homomorphism(a, b):
    got = dec(CTX.rescale(CTX.multiply(enc(a), enc(b))))
    assert np.max(np.abs(got - np.asarray(a) * b)) < 10 * TOL


@given(vectors, st.integers(0, SLOTS - 1))
@settings(max_examples=12, deadline=None)
def test_rotation_commutes_with_addition(v, r):
    a = enc(v)
    b = enc(list(reversed(v)))
    lhs = dec(CTX.rotate(CTX.add(a, b), r))
    rhs = dec(CTX.add(CTX.rotate(a, r), CTX.rotate(b, r)))
    assert np.max(np.abs(lhs - rhs)) < 10 * TOL


@given(vectors)
@settings(max_examples=10, deadline=None)
def test_conjugation_is_involution(v):
    ct = enc(v)
    back = dec(CTX.conjugate(CTX.conjugate(ct)))
    assert np.max(np.abs(back - v)) < 10 * TOL


@given(vectors, finite)
@settings(max_examples=10, deadline=None)
def test_scalar_distributes_over_addition(v, c):
    a = enc(v)
    lhs = dec(CTX.rescale(CTX.multiply_scalar(a, c)))
    assert np.max(np.abs(lhs - c * np.asarray(v))) < 10 * TOL


@given(vectors)
@settings(max_examples=10, deadline=None)
def test_negate_then_add_is_zero(v):
    ct = enc(v)
    got = dec(CTX.add(ct, CTX.negate(ct)))
    assert np.max(np.abs(got)) < TOL


@given(st.integers(1, SLOTS - 1), st.integers(1, SLOTS - 1))
@settings(max_examples=10, deadline=None)
def test_hoisted_equals_direct_rotation(r1, r2):
    rng = np.random.default_rng(r1 * 31 + r2)
    v = rng.uniform(-1, 1, SLOTS)
    ct = enc(v)
    hoisted = CTX.hoisted_rotate(ct, [r1, r2])
    for r, rot in zip((r1, r2), hoisted):
        direct = dec(CTX.rotate(ct, r))
        assert np.max(np.abs(dec(rot) - direct)) < 10 * TOL
