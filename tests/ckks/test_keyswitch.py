"""Key-switching internals: decomposition, KeyMult, gadget digits."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks import CkksContext, rns, toy_params
from repro.ckks.keys import HYBRID, KLSS
from repro.ckks.keyswitch.hybrid import (hybrid_decompose,
                                         hybrid_key_switch,
                                         key_mult_accumulate,
                                         mod_down_pair)
from repro.ckks.keyswitch.klss import (balanced_digits, klss_decompose,
                                       klss_key_switch)


@pytest.fixture(scope="module")
def ctx():
    return CkksContext(toy_params(ring_degree=32, max_level=4, alpha=2,
                                  prime_bits=28), seed=11)


def random_eval_poly(ctx, level, seed=0):
    rng = np.random.default_rng(seed)
    moduli = ctx.moduli_at(level)
    coeffs = [int(rng.integers(-10**6, 10**6))
              for _ in range(ctx.params.ring_degree)]
    return rns.from_big_ints(coeffs, moduli,
                             ctx.params.ring_degree).to_eval()


def switch_error(ctx, poly, delta0, delta1, source_coeffs):
    """|| (d0 + d1 s) - poly * s_from ||_inf over the integers."""
    s = ctx.secret_key.as_rns(poly.moduli)
    source = rns.RnsPoly.from_int_coeffs(source_coeffs,
                                         poly.moduli).to_eval()
    lhs = delta0 + delta1 * s
    rhs = poly.to_eval() * source
    residual = rns.compose_crt((lhs - rhs).to_coeff())
    return max(abs(v) for v in residual)


class TestBalancedDigits:
    def test_exact_recomposition(self):
        for value in (0, 1, -1, 12345, -98765, 2**40 + 3, -(2**40) - 7):
            digits = balanced_digits(value, 8, 8)
            assert sum(d * (1 << (8 * j)) for j, d in enumerate(digits)) \
                == value

    def test_digit_range(self):
        digits = balanced_digits(123456789, 8, 5)
        assert all(-128 <= d < 128 for d in digits)

    def test_budget_too_small_raises(self):
        with pytest.raises(ValueError):
            balanced_digits(2**32, 8, 2)

    @given(st.integers(-(2**50), 2**50), st.integers(4, 16))
    @settings(max_examples=100, deadline=None)
    def test_property_recomposition(self, value, v):
        num = (value.bit_length() + 1) // v + 2
        digits = balanced_digits(value, v, num)
        assert sum(d * (1 << (v * j)) for j, d in enumerate(digits)) \
            == value
        assert all(abs(d) <= (1 << (v - 1)) + (1 << v)
                   for d in digits)


class TestHybridStages:
    def test_decompose_shapes(self, ctx):
        level = ctx.params.max_level
        key = ctx.evaluation_key(HYBRID, level, "mult")
        poly = random_eval_poly(ctx, level).to_coeff()
        digits = hybrid_decompose(poly, key, ctx.params.alpha)
        assert len(digits) == ctx.params.beta_at(level)
        for d in digits:
            assert d.moduli == key.moduli
            assert d.form == rns.EVAL

    def test_decompose_wrong_basis_rejected(self, ctx):
        key = ctx.evaluation_key(HYBRID, 4, "mult")
        poly = random_eval_poly(ctx, 2).to_coeff()
        with pytest.raises(ValueError):
            hybrid_decompose(poly, key, ctx.params.alpha)

    def test_full_switch_error_small(self, ctx):
        level = 3
        key = ctx.evaluation_key(HYBRID, level, "mult")
        poly = random_eval_poly(ctx, level, seed=1)
        d0, d1 = hybrid_key_switch(poly, key, ctx.params.alpha)
        error = switch_error(ctx, poly, d0, d1,
                             ctx.secret_key.squared_coeffs())
        assert error < 10**6  # << q0/2 ~ 5e8: decryptable headroom

    def test_rotation_switch(self, ctx):
        level = 3
        g = 5
        key = ctx.evaluation_key(HYBRID, level, ("galois", g))
        poly = random_eval_poly(ctx, level, seed=2)
        d0, d1 = hybrid_key_switch(poly, key, ctx.params.alpha)
        error = switch_error(ctx, poly, d0, d1,
                             ctx.secret_key.automorphism_coeffs(g))
        assert error < 10**6

    def test_keymult_linear_in_digits(self, ctx):
        level = 3
        key = ctx.evaluation_key(HYBRID, level, "mult")
        poly = random_eval_poly(ctx, level, seed=3).to_coeff()
        digits = hybrid_decompose(poly, key, ctx.params.alpha)
        acc0, acc1 = key_mult_accumulate(digits, key)
        # accumulating digit-by-digit must equal the one-shot sum
        partial0 = partial1 = None
        for d, (b, a) in zip(digits, key.parts):
            t0, t1 = d * b, d * a
            partial0 = t0 if partial0 is None else partial0 + t0
            partial1 = t1 if partial1 is None else partial1 + t1
        assert rns.compose_crt(acc0.to_coeff()) == \
            rns.compose_crt(partial0.to_coeff())
        assert rns.compose_crt(acc1.to_coeff()) == \
            rns.compose_crt(partial1.to_coeff())

    def test_too_many_digits_rejected(self, ctx):
        key = ctx.evaluation_key(HYBRID, 1, "mult")
        digits = [random_eval_poly(ctx, 1)] * (key.num_digits + 1)
        with pytest.raises(ValueError):
            key_mult_accumulate(digits, key)


class TestKlssStages:
    def test_decompose_digit_count(self, ctx):
        level = 3
        key = ctx.evaluation_key(KLSS, level, "mult")
        poly = random_eval_poly(ctx, level).to_coeff()
        digits = klss_decompose(poly, key)
        assert len(digits) == key.num_digits

    def test_decompose_recomposes(self, ctx):
        """sum_j digit_j * 2^(vj) == poly over the integers."""
        level = 2
        key = ctx.evaluation_key(KLSS, level, "mult")
        poly = random_eval_poly(ctx, level, seed=4).to_coeff()
        digits = klss_decompose(poly, key)
        v = key.digit_bits
        n = poly.n
        recombined = [0] * n
        for j, d in enumerate(digits):
            coeffs = rns.compose_crt(d.to_coeff().select_limbs(
                range(len(poly.moduli))))
            # each digit poly has small coeffs; reduce to centred ints
            for i in range(n):
                recombined[i] += coeffs[i] * (1 << (v * j))
        original = rns.compose_crt(poly)
        big_q = rns.product(poly.moduli)
        for got, want in zip(recombined, original):
            assert (got - want) % big_q == 0

    def test_full_switch_error_small(self, ctx):
        level = 3
        key = ctx.evaluation_key(KLSS, level, "mult")
        poly = random_eval_poly(ctx, level, seed=5)
        d0, d1 = klss_key_switch(poly, key)
        error = switch_error(ctx, poly, d0, d1,
                             ctx.secret_key.squared_coeffs())
        assert error < 10**6

    def test_wrong_basis_rejected(self, ctx):
        key = ctx.evaluation_key(KLSS, 4, "mult")
        poly = random_eval_poly(ctx, 2).to_coeff()
        with pytest.raises(ValueError):
            klss_decompose(poly, key)


class TestMethodEquivalence:
    @pytest.mark.parametrize("level", [1, 2, 4])
    def test_hybrid_and_klss_agree(self, ctx, level):
        poly = random_eval_poly(ctx, level, seed=6)
        hk = ctx.evaluation_key(HYBRID, level, "mult")
        kk = ctx.evaluation_key(KLSS, level, "mult")
        h0, h1 = hybrid_key_switch(poly, hk, ctx.params.alpha)
        k0, k1 = klss_key_switch(poly, kk)
        s = ctx.secret_key.as_rns(poly.moduli)
        h_val = rns.compose_crt((h0 + h1 * s).to_coeff())
        k_val = rns.compose_crt((k0 + k1 * s).to_coeff())
        assert max(abs(a - b) for a, b in zip(h_val, k_val)) < 2 * 10**6


class TestModDownPair:
    def test_output_basis(self, ctx):
        level = 3
        key = ctx.evaluation_key(HYBRID, level, "mult")
        poly = random_eval_poly(ctx, level, seed=7).to_coeff()
        digits = hybrid_decompose(poly, key, ctx.params.alpha)
        acc0, acc1 = key_mult_accumulate(digits, key)
        d0, d1 = mod_down_pair(acc0, acc1, key.aux_count)
        assert d0.moduli == ctx.moduli_at(level)
        assert d1.moduli == ctx.moduli_at(level)
        assert d0.form == rns.EVAL
