"""RNS machinery: CRT round trips, BConv error bounds, ModUp/ModDown."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks import modmath, primes, rns
from repro.ckks.rns import RnsPoly

N = 32
MODULI = tuple(primes.ntt_primes(4, 28, N))
AUX = tuple(primes.ntt_primes(2, 28, N, exclude=set(MODULI)))


def _big_randint(rng, bound: int) -> int:
    """Uniform-ish integer in [-bound, bound] of arbitrary width."""
    bits = bound.bit_length() + 8
    words = (bits + 62) // 63
    v = 0
    for _ in range(words):
        v = (v << 63) | int(rng.integers(0, 1 << 63, dtype=np.uint64))
    return v % (2 * bound + 1) - bound


def random_poly(rng, moduli=MODULI, bound=None):
    big_q = rns.product(moduli)
    bound = bound or big_q // 2 - 1
    coeffs = [_big_randint(rng, bound) for _ in range(N)]
    return rns.from_big_ints(coeffs, moduli, N), coeffs


class TestRnsPolyBasics:
    def test_zeros(self):
        p = RnsPoly.zeros(N, MODULI)
        assert p.n == N
        assert p.form == rns.COEFF
        assert all(int(v) == 0 for limb in p.limbs for v in limb)

    def test_limb_modulus_count_mismatch(self):
        with pytest.raises(ValueError):
            RnsPoly([modmath.zeros(N, MODULI[0])], MODULI, rns.COEFF)

    def test_bad_form_rejected(self):
        with pytest.raises(ValueError):
            RnsPoly([], (), "weird")

    def test_add_requires_same_basis(self, rng):
        a, _ = random_poly(rng)
        b, _ = random_poly(rng, MODULI[:3])
        with pytest.raises(ValueError):
            _ = a + b

    def test_mul_requires_eval_form(self, rng):
        a, _ = random_poly(rng)
        with pytest.raises(ValueError):
            _ = a * a

    def test_drop_limbs(self, rng):
        a, _ = random_poly(rng)
        dropped = a.drop_limbs(2)
        assert dropped.moduli == MODULI[:2]

    def test_concat_disjoint(self, rng):
        a, _ = random_poly(rng, MODULI[:2])
        b, _ = random_poly(rng, MODULI[2:])
        c = a.concat(b)
        assert c.moduli == MODULI

    def test_concat_overlap_rejected(self, rng):
        a, _ = random_poly(rng)
        with pytest.raises(ValueError):
            a.concat(a)


class TestCrtRoundTrip:
    def test_compose_inverts_from_big_ints(self, rng):
        poly, coeffs = random_poly(rng)
        assert rns.compose_crt(poly) == coeffs

    def test_through_eval_form(self, rng):
        poly, coeffs = random_poly(rng)
        assert rns.compose_crt(poly.to_eval().to_coeff()) == coeffs

    def test_single_modulus(self, rng):
        poly, coeffs = random_poly(rng, MODULI[:1],
                                   bound=MODULI[0] // 2 - 1)
        assert rns.compose_crt(poly) == coeffs

    def test_centred_range(self, rng):
        poly, _ = random_poly(rng)
        big_q = rns.product(MODULI)
        for c in rns.compose_crt(poly):
            assert -big_q // 2 < c <= big_q // 2


class TestArithmeticHomomorphism:
    def test_addition_matches_bigint(self, rng):
        a, ca = random_poly(rng, bound=10**8)
        b, cb = random_poly(rng, bound=10**8)
        got = rns.compose_crt(a + b)
        assert got == [x + y for x, y in zip(ca, cb)]

    def test_eval_product_is_negacyclic(self, rng):
        a, ca = random_poly(rng, bound=1000)
        b, cb = random_poly(rng, bound=1000)
        prod = (a.to_eval() * b.to_eval()).to_coeff()
        got = rns.compose_crt(prod)
        # schoolbook negacyclic product over the integers
        ref = [0] * N
        for i in range(N):
            for j in range(N):
                k, sign = (i + j, 1) if i + j < N else (i + j - N, -1)
                ref[k] += sign * ca[i] * cb[j]
        assert got == ref


class TestAutomorphism:
    def test_identity(self, rng):
        a, ca = random_poly(rng)
        assert rns.compose_crt(a.automorphism(1)) == ca

    def test_x_to_x3_on_monomial(self):
        coeffs = [0] * N
        coeffs[1] = 1  # X
        a = rns.from_big_ints(coeffs, MODULI, N)
        out = rns.compose_crt(a.automorphism(3))
        expected = [0] * N
        expected[3] = 1  # X^3
        assert out == expected

    def test_sign_wraparound(self):
        # X^(N/2+1) under g=3 -> X^(3N/2+3) = X^N * X^(N/2+3)
        #                      = -X^(N/2+3).
        coeffs = [0] * N
        coeffs[N // 2 + 1] = 1
        a = rns.from_big_ints(coeffs, MODULI, N)
        out = rns.compose_crt(a.automorphism(3))
        expected = [0] * N
        expected[N // 2 + 3] = -1
        assert out == expected

    def test_composition(self, rng):
        a, _ = random_poly(rng)
        two_n = 2 * N
        g1, g2 = 5, 7
        combined = a.automorphism(g1).automorphism(g2)
        direct = a.automorphism(g1 * g2 % two_n)
        assert rns.compose_crt(combined) == rns.compose_crt(direct)

    def test_even_power_rejected(self, rng):
        a, _ = random_poly(rng)
        with pytest.raises(ValueError):
            a.automorphism(2)

    def test_eval_form_roundtrips(self, rng):
        a, _ = random_poly(rng)
        via_eval = a.to_eval().automorphism(5).to_coeff()
        direct = a.automorphism(5)
        assert rns.compose_crt(via_eval) == rns.compose_crt(direct)


class TestBaseConvert:
    def test_slack_bounded_by_limb_count(self, rng):
        # HPS fast conversion returns x + e*Q with 0 <= e < k,
        # independent of x's magnitude (the flooring slack comes from
        # the per-limb scaled residues, not from x).
        coeffs = [int(rng.integers(0, 10**9)) for _ in range(N)]
        poly = rns.from_big_ints(coeffs, MODULI, N)
        converted = rns.base_convert(poly, AUX)
        big_q = rns.product(MODULI)
        k = len(MODULI)
        for p, limb in zip(AUX, converted.limbs):
            for c, v in zip(coeffs, limb):
                assert (int(v) - c) % p in {(e * big_q) % p
                                            for e in range(k)}

    def test_error_is_multiple_of_source_modulus(self, rng):
        big_q = rns.product(MODULI)
        poly, coeffs = random_poly(rng)  # full range: error can appear
        converted = rns.base_convert(poly, AUX)
        for i in range(N):
            value = coeffs[i] % big_q  # the non-centred representative
            for p, limb in zip(AUX, converted.limbs):
                diff = (int(limb[i]) - value) % p
                # diff must be e*Q mod p with 0 <= e < k
                candidates = {(e * big_q) % p for e in range(len(MODULI) + 1)}
                assert diff in candidates

    def test_requires_coeff_form(self, rng):
        poly, _ = random_poly(rng)
        with pytest.raises(ValueError):
            rns.base_convert(poly.to_eval(), AUX)


class TestModUpModDown:
    def test_mod_down_inverts_scaling(self, rng):
        # Build P * x over Q x P, ModDown must return x (exactly for
        # small x since P*x mod each prime is known).
        x_coeffs = [int(rng.integers(-1000, 1000)) for _ in range(N)]
        big_p = rns.product(AUX)
        scaled = [c * big_p for c in x_coeffs]
        poly = rns.from_big_ints(scaled, MODULI + AUX, N)
        down = rns.mod_down(poly, len(MODULI))
        assert down.moduli == MODULI
        assert rns.compose_crt(down) == x_coeffs

    def test_mod_down_rounds_small_noise(self, rng):
        x_coeffs = [int(rng.integers(-1000, 1000)) for _ in range(N)]
        big_p = rns.product(AUX)
        noisy = [c * big_p + int(rng.integers(-50, 50))
                 for c in x_coeffs]
        poly = rns.from_big_ints(noisy, MODULI + AUX, N)
        down = rns.mod_down(poly, len(MODULI))
        got = rns.compose_crt(down)
        assert all(abs(g - c) <= len(AUX) + 1
                   for g, c in zip(got, x_coeffs))

    def test_mod_up_preserves_value_mod_digit(self, rng):
        poly, coeffs = random_poly(rng)
        digits = [[0, 1], [2, 3]]
        extended = rns.mod_up(poly, digits, MODULI, AUX)
        assert len(extended) == 2
        for digit_indices, ext in zip(digits, extended):
            d_mod = rns.product(MODULI[i] for i in digit_indices)
            assert ext.moduli == MODULI + AUX
            # value mod own digit primes is preserved exactly
            for i in digit_indices:
                q = MODULI[i]
                own = ext.limbs[list(MODULI + AUX).index(q)]
                orig = poly.limbs[i]
                assert all(int(a) == int(b) for a, b in zip(own, orig))

    def test_exact_rescale_divides(self, rng):
        last = MODULI[-1]
        x_coeffs = [int(rng.integers(-10**6, 10**6)) * last
                    for _ in range(N)]
        poly = rns.from_big_ints(x_coeffs, MODULI, N)
        rescaled = rns.exact_rescale(poly)
        assert rescaled.moduli == MODULI[:-1]
        assert rns.compose_crt(rescaled) == [c // last for c in x_coeffs]

    def test_rescale_single_limb_rejected(self, rng):
        poly, _ = random_poly(rng, MODULI[:1], bound=1000)
        with pytest.raises(ValueError):
            rns.exact_rescale(poly)


@given(st.integers(0, 2**32 - 1), st.integers(2, 4))
@settings(max_examples=30, deadline=None)
def test_property_crt_roundtrip(seed, k):
    rng = np.random.default_rng(seed)
    moduli = MODULI[:k]
    big_q = rns.product(moduli)
    coeffs = [_big_randint(rng, big_q // 2 - 1) for _ in range(N)]
    poly = rns.from_big_ints(coeffs, moduli, N)
    assert rns.compose_crt(poly) == coeffs
