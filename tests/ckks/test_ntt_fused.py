"""Fused radix-4 NTT tier: differential, allocation and cache keying.

The fused engine (merged two-stage butterflies, cross-stage lazy
reduction, arena-pooled workspaces) must be **bit-identical** to the
per-stage-normalised radix-2 oracle across the whole supported width
grid, and a warmed plan must allocate nothing: both are asserted
here, the first by hypothesis-driven differentials against the oracle
and the schoolbook convolution reference, the second by FakeBackend's
device-allocation counter and the ``kernel.alloc.ntt`` obs ledger.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.backend as backend_mod
from repro import obs
from repro.ckks import primes
from repro.ckks.ntt import (RADIX_FUSED, RADIX_ORACLE,
                            clear_batch_plan_cache, get_batch_plan,
                            negacyclic_convolution_reference)
from repro.ckks.rns import clear_plan_cache, get_plan

#: the supported uint64-datapath width grid: narrow (26/28/31) and
#: wide (36/60/62) moduli; 62 bits is the lazy-domain headroom edge
#: (4q < 2^64).
WIDTHS = (26, 28, 31, 36, 60, 62)

N = 64


def _prime(bits: int, n: int = N) -> int:
    return primes.ntt_primes(1, bits, n)[0]


def _limb(q: int, n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, q, size=n,
                                                dtype=np.uint64)


def _host(arr) -> np.ndarray:
    return np.asarray(backend_mod.to_host(arr), dtype=np.uint64)


class TestScalarDifferential:
    """Fused scalar plans against the radix-2 oracle, per width."""

    @settings(deadline=None, max_examples=60)
    @given(bits=st.sampled_from(WIDTHS),
           n_log2=st.integers(min_value=1, max_value=8),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_forward_inverse_match_oracle(self, bits, n_log2, seed):
        n = 1 << n_log2
        q = _prime(bits, n)
        fused = get_plan(n, q, radix=RADIX_FUSED)
        oracle = get_plan(n, q, radix=RADIX_ORACLE)
        assert fused.fused and not oracle.fused
        x = _limb(q, n, seed)
        fwd_fused = _host(fused.forward(x.copy()))
        fwd_oracle = _host(oracle.forward(x.copy()))
        np.testing.assert_array_equal(fwd_fused, fwd_oracle)
        inv_fused = _host(fused.inverse(fwd_fused.copy()))
        inv_oracle = _host(oracle.inverse(fwd_oracle.copy()))
        np.testing.assert_array_equal(inv_fused, inv_oracle)
        # roundtrip composition lands back on the input
        np.testing.assert_array_equal(inv_fused, x)

    @pytest.mark.parametrize("bits", WIDTHS)
    def test_worst_case_residues(self, bits):
        # All-(q-1) inputs drive every butterfly through the top of
        # its lazy domain — the headroom proof's worst case.
        q = _prime(bits)
        fused = get_plan(N, q, radix=RADIX_FUSED)
        oracle = get_plan(N, q, radix=RADIX_ORACLE)
        x = np.full(N, q - 1, dtype=np.uint64)
        fwd = _host(fused.forward(x.copy()))
        np.testing.assert_array_equal(fwd, _host(oracle.forward(x.copy())))
        np.testing.assert_array_equal(
            _host(fused.inverse(fwd.copy())),
            _host(oracle.inverse(fwd.copy())))
        np.testing.assert_array_equal(_host(fused.inverse(fwd)), x)

    @pytest.mark.parametrize("bits", (28, 36, 62))
    def test_pointwise_product_is_negacyclic_convolution(self, bits):
        n = 16
        q = _prime(bits, n)
        plan = get_plan(n, q)          # default tier is the fused one
        assert plan.radix == RADIX_FUSED
        rng = np.random.default_rng(bits)
        a = rng.integers(0, q, size=n, dtype=np.uint64)
        b = rng.integers(0, q, size=n, dtype=np.uint64)
        fa = np.asarray(_host(plan.forward(a)), dtype=object)
        fb = np.asarray(_host(plan.forward(b)), dtype=object)
        via_ntt = _host(plan.inverse((fa * fb) % q))
        reference = _host(negacyclic_convolution_reference(a, b, q))
        np.testing.assert_array_equal(via_ntt, reference)

    @settings(deadline=None, max_examples=20)
    @given(bits=st.sampled_from(WIDTHS),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_inverse_forward_identity(self, bits, seed):
        q = _prime(bits)
        plan = get_plan(N, q)
        x = _limb(q, N, seed)
        np.testing.assert_array_equal(
            _host(plan.forward(plan.inverse(x.copy()))), x)


class TestBatchDifferential:
    """Fused batch plans against the radix-2 batch oracle."""

    def _basis(self, n: int) -> tuple[int, ...]:
        return (tuple(primes.ntt_primes(2, 28, n))
                + tuple(primes.ntt_primes(2, 36, n))
                + tuple(primes.ntt_primes(1, 60, n)))

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_forward_inverse_match_oracle(self, seed):
        moduli = self._basis(N)
        fused = get_batch_plan(N, moduli, radix=RADIX_FUSED)
        oracle = get_batch_plan(N, moduli, radix=RADIX_ORACLE)
        limbs = [_limb(q, N, seed + i) for i, q in enumerate(moduli)]
        fwd_fused = fused.forward(limbs)
        fwd_oracle = oracle.forward(limbs)
        for a, b in zip(fwd_fused, fwd_oracle):
            np.testing.assert_array_equal(_host(a), _host(b))
        inv_fused = fused.inverse(fwd_fused)
        inv_oracle = oracle.inverse(fwd_oracle)
        for a, b, x in zip(inv_fused, inv_oracle, limbs):
            np.testing.assert_array_equal(_host(a), _host(b))
            np.testing.assert_array_equal(_host(a), x)

    def test_out_block_round_trips(self):
        moduli = self._basis(N)
        plan = get_batch_plan(N, moduli)
        limbs = [_limb(q, N, 7 + i) for i, q in enumerate(moduli)]
        reference = [_host(r) for r in plan.forward(limbs)]
        block = plan.backend.empty((len(moduli), N), np.uint64)
        got = plan.forward(limbs, out=block)
        for a, b in zip(got, reference):
            np.testing.assert_array_equal(_host(a), b)
        # the returned limbs are views into the caller's block
        np.testing.assert_array_equal(_host(block[0]), reference[0])

    def test_object_rows_fall_back(self):
        n = 16
        moduli = (primes.ntt_primes(1, 28, n)[0],
                  primes.ntt_primes(1, 70, n)[0])
        plan = get_batch_plan(n, moduli)
        limbs = [np.random.default_rng(i).integers(0, 2**28, size=n)
                 for i in range(2)]
        fwd = plan.forward(limbs)
        for i, q in enumerate(moduli):
            scalar = get_plan(n, q, radix=RADIX_ORACLE)
            got = np.asarray(backend_mod.to_host(fwd[i]),
                             dtype=object) % q
            want = np.asarray(
                backend_mod.to_host(scalar.forward(limbs[i])),
                dtype=object) % q
            np.testing.assert_array_equal(got, want)


class TestZeroAllocation:
    """Warmed fused plans make zero device allocations."""

    def test_warmed_batch_plan_allocates_nothing(self):
        fake = backend_mod.get_backend("fake")
        moduli = (tuple(primes.ntt_primes(2, 28, N))
                  + tuple(primes.ntt_primes(2, 36, N)))
        plan = get_batch_plan(N, moduli, backend=fake)
        limbs = [fake.asarray(_limb(q, N, i))
                 for i, q in enumerate(moduli)]
        block = fake.empty((len(moduli), N), np.uint64)
        # warmup: arena pool misses allocate the scratch buffers once
        plan.forward(limbs, out=block)
        plan.inverse(limbs, out=block)
        fake.reset_counters()
        plan.inverse(plan.forward(limbs, out=block), out=block)
        counters = fake.transfer_counts()
        assert counters["alloc"] == 0, counters

    def test_warmed_row_batch_allocates_only_the_row_copy(self):
        from repro.serve.engine import RowBatchNtt

        fake = backend_mod.get_backend("fake")
        q = _prime(36)
        row_ntt = RowBatchNtt(N, q, backend=fake)
        rows = fake.asarray(
            np.stack([_limb(q, N, s) for s in range(4)]))
        row_ntt.inverse(row_ntt.forward(rows))      # warm the arena
        fake.reset_counters()
        row_ntt.inverse(row_ntt.forward(rows))
        counters = fake.transfer_counts()
        assert counters["alloc"] == 0, counters

    def test_ledger_counts_misses_then_goes_quiet(self):
        moduli = tuple(primes.ntt_primes(3, 36, N))
        limbs = [_limb(q, N, 11 + i) for i, q in enumerate(moduli)]
        obs.configure(enabled=True, reset=True)
        try:
            clear_batch_plan_cache()
            plan = get_batch_plan(N, moduli)
            block = plan.backend.empty((len(moduli), N), np.uint64)
            plan.forward(limbs, out=block)          # warmup: misses
            warm = backend_mod.ledger_counters().get("kernel.alloc.ntt",
                                                     0.0)
            assert warm > 0
            plan.inverse(plan.forward(limbs, out=block), out=block)
            steady = backend_mod.ledger_counters().get(
                "kernel.alloc.ntt", 0.0)
            assert steady == warm, (warm, steady)
        finally:
            obs.configure(enabled=False, reset=True)
            clear_batch_plan_cache()


class TestRadixCacheKeying:
    """Oracle and fused plans for one (n, moduli, backend) never alias."""

    def test_scalar_plan_cache_keys_radix(self):
        q = _prime(28)
        fused = get_plan(N, q, radix=RADIX_FUSED)
        oracle = get_plan(N, q, radix=RADIX_ORACLE)
        assert fused is not oracle
        assert get_plan(N, q) is fused              # default tier
        assert get_plan(N, q, radix=RADIX_ORACLE) is oracle

    def test_batch_plan_cache_keys_radix(self):
        moduli = tuple(primes.ntt_primes(2, 28, N))
        fused = get_batch_plan(N, moduli, radix=RADIX_FUSED)
        oracle = get_batch_plan(N, moduli, radix=RADIX_ORACLE)
        assert fused is not oracle
        assert fused.radix == RADIX_FUSED
        assert oracle.radix == RADIX_ORACLE
        assert get_batch_plan(N, moduli) is fused

    def test_invalid_radix_rejected(self):
        q = _prime(28)
        with pytest.raises(ValueError):
            get_plan(N, q, radix=3)
        with pytest.raises(ValueError):
            get_batch_plan(N, (q,), radix=8)

    def test_eviction_still_bounded_with_radix_keys(self):
        from repro.ckks.rns import PLAN_CACHE_MAXSIZE, plan_cache_info

        clear_plan_cache()
        try:
            half = PLAN_CACHE_MAXSIZE // 2 + 4
            for q in primes.ntt_primes(half, 18, 32):
                get_plan(32, q, radix=RADIX_FUSED)
                get_plan(32, q, radix=RADIX_ORACLE)
            info = plan_cache_info()
            assert info.currsize <= PLAN_CACHE_MAXSIZE
        finally:
            clear_plan_cache()

    def test_rebuilt_fused_plan_still_bit_exact_after_churn(self):
        from repro.ckks.rns import PLAN_CACHE_MAXSIZE

        clear_plan_cache()
        try:
            n = 32
            q = primes.ntt_primes(1, 28, n)[0]
            x = _limb(q, n, 3)
            reference = _host(get_plan(n, q,
                                       radix=RADIX_ORACLE).forward(x.copy()))
            for churn_q in primes.ntt_primes(PLAN_CACHE_MAXSIZE + 4, 18, n):
                get_plan(n, churn_q)
            rebuilt = get_plan(n, q, radix=RADIX_FUSED)
            np.testing.assert_array_equal(
                _host(rebuilt.forward(x.copy())), reference)
        finally:
            clear_plan_cache()
