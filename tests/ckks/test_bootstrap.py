"""Functional bootstrapping: every stage verified, plus end-to-end."""

import numpy as np
import pytest

from repro.ckks import CkksContext, linalg
from repro.ckks.bootstrap import Bootstrapper, bootstrappable_toy_params
from repro.ckks.rns import compose_crt


@pytest.fixture(scope="module")
def ctx():
    return CkksContext(bootstrappable_toy_params(), seed=5)


@pytest.fixture(scope="module")
def bs(ctx):
    return Bootstrapper(ctx)


@pytest.fixture(scope="module")
def msg():
    return np.array([0.5, -0.25, 0.125, 0.375] * 4)


@pytest.fixture(scope="module")
def refreshed(ctx, bs, msg):
    """One full bootstrap, shared by the end-to-end assertions."""
    ct = ctx.encrypt(msg, level=0)
    return bs.bootstrap(ct)


class TestSetup:
    def test_sine_fit_is_tight(self, bs):
        assert bs.sine_fit_error < 1e-6

    def test_linear_transforms_are_inverse(self, bs, ctx):
        """StC(CtS(z)) must be the identity on slot vectors."""
        n = ctx.params.num_slots
        rng = np.random.default_rng(0)
        z = rng.uniform(-1, 1, n) + 1j * rng.uniform(-1, 1, n)
        w = bs.cts_a @ z + bs.cts_b @ np.conj(z)
        back = bs.stc_c @ w + bs.stc_d @ np.conj(w)
        assert np.max(np.abs(back - z)) < 1e-9

    def test_cts_produces_real_coefficient_split(self, bs, ctx):
        """For a real coefficient vector c, w = c_lo + i c_hi."""
        n = ctx.params.ring_degree
        from repro.ckks import encoding
        rng = np.random.default_rng(1)
        c = rng.integers(-100, 100, n).astype(float)
        emb = encoding._embedding_matrix(n, n // 2)
        z = emb @ c
        w = bs.cts_a @ z + bs.cts_b @ np.conj(z)
        assert np.max(np.abs(w - (c[:n // 2] + 1j * c[n // 2:]))) < 1e-8


class TestModRaise:
    def test_level_and_scale(self, ctx, bs, msg):
        ct = ctx.encrypt(msg, level=0)
        raised = bs.mod_raise(ct)
        assert raised.level == ctx.params.max_level
        assert raised.scale == ct.scale

    def test_overflow_polynomial_is_small_integer(self, ctx, bs, msg):
        ct = ctx.encrypt(msg, level=0)
        s0 = ctx.secret_key.as_rns(ct.moduli)
        base = np.array(compose_crt((ct.c0 + ct.c1 * s0).to_coeff()),
                        dtype=float)
        raised = bs.mod_raise(ct)
        s = ctx.secret_key.as_rns(raised.moduli)
        lifted = np.array(compose_crt(
            (raised.c0 + raised.c1 * s).to_coeff()), dtype=float)
        overflow = (lifted - base) / ctx.q_chain[0]
        assert np.allclose(overflow, np.round(overflow))
        assert np.max(np.abs(overflow)) <= bs.i_bound

    def test_rejects_higher_level(self, ctx, bs, msg):
        with pytest.raises(ValueError):
            bs.mod_raise(ctx.encrypt(msg, level=2))


class TestStages:
    def test_coeff_to_slot_accuracy(self, ctx, bs, msg):
        ct = ctx.encrypt(msg, level=0)
        raised = bs.mod_raise(ct)
        s = ctx.secret_key.as_rns(raised.moduli)
        coeffs = np.array(compose_crt(
            (raised.c0 + raised.c1 * s).to_coeff()), dtype=float)
        n = ctx.params.ring_degree
        expected = (coeffs[:n // 2] + 1j * coeffs[n // 2:]) / raised.scale
        got = ctx.decrypt(bs.coeff_to_slot(raised))
        assert np.max(np.abs(got - expected)) < 1e-2

    def test_eval_mod_removes_q0_multiples(self, ctx, bs, msg):
        ct = ctx.encrypt(msg, level=0)
        s0 = ctx.secret_key.as_rns(ct.moduli)
        base = np.array(compose_crt((ct.c0 + ct.c1 * s0).to_coeff()),
                        dtype=float)
        raised = bs.mod_raise(ct)
        slots = bs.coeff_to_slot(raised)
        reduced = ctx.decrypt(bs.eval_mod(slots))
        n = ctx.params.ring_degree
        expected = (base[:n // 2] + 1j * base[n // 2:]) / raised.scale
        assert np.max(np.abs(reduced - expected)) < 5e-2


class TestEndToEnd:
    def test_level_is_restored(self, ctx, refreshed):
        assert refreshed.level >= 3

    def test_message_survives(self, ctx, refreshed, msg):
        got = ctx.decrypt(refreshed)[:16]
        assert np.max(np.abs(got - msg)) < 5e-2

    def test_refreshed_ciphertext_is_usable(self, ctx, refreshed, msg):
        squared = ctx.rescale(ctx.multiply(refreshed, refreshed))
        got = ctx.decrypt(squared)[:16]
        assert np.max(np.abs(got - msg ** 2)) < 8e-2

    def test_different_message(self, ctx, bs):
        other = np.array([-0.4, 0.3, -0.2, 0.1] * 4)
        out = bs.bootstrap(ctx.encrypt(other, level=0))
        assert np.max(np.abs(ctx.decrypt(out)[:16] - other)) < 5e-2


class TestChebyshevEvaluation:
    def test_matches_numpy_chebval(self, ctx):
        rng = np.random.default_rng(3)
        x = np.array([0.9, -0.7, 0.2, -0.1] * 4)
        ct = ctx.encrypt(x)
        cheb = rng.uniform(-1, 1, 13)  # degree 12
        got = ctx.decrypt(linalg.evaluate_chebyshev(ctx, ct, cheb))[:16]
        expected = np.polynomial.chebyshev.chebval(x, cheb)
        assert np.max(np.abs(got.real - expected)) < 1e-3

    def test_high_degree_stability(self, ctx):
        x = np.array([0.5, -0.5, 0.25, 0.75] * 4)
        ct = ctx.encrypt(x)
        cheb = np.zeros(29)
        cheb[-1] = 1.0  # pure T_28
        got = ctx.decrypt(linalg.evaluate_chebyshev(ctx, ct, cheb))[:16]
        expected = np.cos(28 * np.arccos(x))
        assert np.max(np.abs(got.real - expected)) < 1e-2

    def test_degree_zero_rejected(self, ctx):
        ct = ctx.encrypt(np.ones(16) * 0.5)
        with pytest.raises(ValueError):
            linalg.evaluate_chebyshev(ctx, ct, [1.0])
