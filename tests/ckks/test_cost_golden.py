"""Golden values pinning the key-switching cost model (Fig. 2).

Aether's whole method policy hangs off these numbers: the hybrid-vs-
KLSS crossover level decides which method wins where, and the
per-kernel op counts decide how the delay model weighs NTTU vs KMU
work.  A refactor that shifts any of them silently re-tunes the
accelerator, so they are pinned exactly (the counts are closed-form
integers — any drift is a semantic change, not noise).
"""

import pytest

from repro.ckks.keyswitch import cost
from repro.ckks.params import SET_I, SET_II

# First level (Fig. 2's x-axis) at which KLSS overtakes hybrid under
# the paper's parameter sets, i.e. quantitative line >= 1.
CROSSOVER_LEVEL = 12

# Exact per-kernel modular-multiplication counts at three probe
# levels (low / mid / top of the modulus chain).
GOLDEN_KERNEL_OPS = {
    ("hybrid", 5): {"ntt": 21233664.0, "bconv": 8257536.0,
                    "keymult": 1572864.0, "elementwise": 786432.0},
    ("hybrid", 20): {"ntt": 77856768.0, "bconv": 66650112.0,
                     "keymult": 8650752.0, "elementwise": 2752512.0},
    ("hybrid", 35): {"ntt": 141557760.0, "bconv": 145489920.0,
                     "keymult": 18874368.0, "elementwise": 4718592.0},
    ("klss", 5): {"ntt": 31850496.0, "bconv": 12189696.0,
                  "keymult": 4718592.0, "elementwise": 3145728.0},
    ("klss", 20): {"ntt": 84934656.0, "bconv": 39714816.0,
                   "keymult": 23592960.0, "elementwise": 7471104.0},
    ("klss", 35): {"ntt": 138018816.0, "bconv": 67239936.0,
                   "keymult": 47185920.0, "elementwise": 11796480.0},
}

# Aether's decisions on the bootstrap trace with the default FAST
# chip: the method mix of Fig. 11b's flow and the hoisting degrees.
GOLDEN_BOOTSTRAP_MIX = {"hybrid": 57, "klss": 11}
GOLDEN_BOOTSTRAP_UNITS = 32
GOLDEN_BOOTSTRAP_HOISTS = {1, 7}


def _params(method: str):
    return SET_I if method == "hybrid" else SET_II


class TestCrossover:
    def test_crossover_level_is_pinned(self):
        line = {level: cost.quantitative_line(SET_I, SET_II, level)
                for level in range(1, 36)}
        first_klss_win = min(l for l, v in line.items() if v >= 1.0)
        assert first_klss_win == CROSSOVER_LEVEL

    def test_hybrid_wins_every_level_below_crossover(self):
        for level in range(1, CROSSOVER_LEVEL):
            assert cost.quantitative_line(SET_I, SET_II, level) < 1.0, \
                f"hybrid should win at level {level}"

    def test_klss_wins_every_level_from_crossover_up(self):
        for level in range(CROSSOVER_LEVEL, 36):
            assert cost.quantitative_line(SET_I, SET_II, level) >= 1.0, \
                f"KLSS should win at level {level}"


class TestGoldenKernelOps:
    @pytest.mark.parametrize("method,level",
                             sorted(GOLDEN_KERNEL_OPS))
    def test_per_kernel_counts(self, method, level):
        ops = cost.keyswitch_ops(method, _params(method), level)
        golden = GOLDEN_KERNEL_OPS[(method, level)]
        assert ops.ntt == golden["ntt"]
        assert ops.bconv == golden["bconv"]
        assert ops.keymult == golden["keymult"]
        assert ops.elementwise == golden["elementwise"]

    @pytest.mark.parametrize("method,level",
                             sorted(GOLDEN_KERNEL_OPS))
    def test_totals_consistent(self, method, level):
        ops = cost.keyswitch_ops(method, _params(method), level)
        assert ops.total == sum(GOLDEN_KERNEL_OPS[(method,
                                                   level)].values())


class TestGoldenAetherPolicy:
    """End-to-end pin: cost model -> Aether decisions on bootstrap."""

    @pytest.fixture(scope="class")
    def config(self):
        from repro.sim.engine import Engine
        from repro.workloads import bootstrap_trace
        return Engine().aether.run(bootstrap_trace())

    def test_method_mix(self, config):
        assert config.method_histogram() == GOLDEN_BOOTSTRAP_MIX

    def test_decision_unit_count(self, config):
        assert len(config.decisions) == GOLDEN_BOOTSTRAP_UNITS

    def test_hoisting_degrees(self, config):
        hoists = {d.hoisting for d in config.decisions.values()}
        assert hoists == GOLDEN_BOOTSTRAP_HOISTS
