"""Key material: secrets, RLWE pairs, hybrid and KLSS gadget keys."""

import numpy as np
import pytest

from repro.ckks import keys, rns
from repro.ckks.keys import HYBRID, KLSS


@pytest.fixture(scope="module")
def material(ctx32_module):
    return ctx32_module


@pytest.fixture(scope="module")
def ctx32_module():
    from repro.ckks import CkksContext, toy_params
    return CkksContext(toy_params(ring_degree=32, max_level=4, alpha=2,
                                  prime_bits=28), seed=5)


class TestSecretKey:
    def test_hamming_weight(self, ctx32_module):
        s = ctx32_module.secret_key
        assert np.count_nonzero(s.coeffs) == \
            ctx32_module.params.hamming_weight or \
            np.count_nonzero(s.coeffs) <= ctx32_module.params.ring_degree

    def test_squared_coeffs_match_convolution(self, ctx32_module):
        s = ctx32_module.secret_key
        n = len(s.coeffs)
        sq = s.squared_coeffs()
        # verify via RNS negacyclic product
        q = ctx32_module.q_chain[0]
        poly = rns.RnsPoly.from_int_coeffs(s.coeffs, (q,)).to_eval()
        prod = (poly * poly).to_coeff()
        expected = [int(v) for v in prod.limbs[0]]
        assert [int(v) % q for v in sq] == expected

    def test_automorphism_coeffs_match_rns(self, ctx32_module):
        s = ctx32_module.secret_key
        q = ctx32_module.q_chain[0]
        g = 5
        direct = s.automorphism_coeffs(g)
        poly = rns.RnsPoly.from_int_coeffs(s.coeffs, (q,)).automorphism(g)
        assert [int(v) % q for v in direct] == \
            [int(v) for v in poly.limbs[0]]


class TestRlwePairs:
    def test_public_key_decrypts_to_noise(self, ctx32_module):
        ctx = ctx32_module
        s = ctx.secret_key.as_rns(ctx.q_chain)
        check = ctx.public_key.b + ctx.public_key.a * s
        residual = rns.compose_crt(check.to_coeff())
        assert max(abs(v) for v in residual) < 50  # just the error e


class TestHybridDigits:
    def test_digit_indices_chunking(self):
        assert keys.hybrid_digit_indices(5, 2) == [[0, 1], [2, 3], [4]]
        assert keys.hybrid_digit_indices(4, 4) == [[0, 1, 2, 3]]
        assert keys.hybrid_digit_indices(1, 3) == [[0]]


class TestHybridKey:
    def test_structure(self, ctx32_module):
        ctx = ctx32_module
        key = ctx.evaluation_key(HYBRID, ctx.params.max_level, "mult")
        assert key.method == HYBRID
        expected_digits = ctx.params.beta_at(ctx.params.max_level)
        assert key.num_digits == expected_digits
        assert key.aux_count == len(ctx.p_moduli)
        assert key.moduli == ctx.q_chain + ctx.p_moduli

    def test_key_equation_holds(self, ctx32_module):
        """b_j + a_j s = e_j + P q~_j s_from for each digit."""
        ctx = ctx32_module
        level = ctx.params.max_level
        key = ctx.evaluation_key(HYBRID, level, "mult")
        s = ctx.secret_key.as_rns(key.moduli)
        source = rns.RnsPoly.from_int_coeffs(
            ctx.secret_key.squared_coeffs(), key.moduli).to_eval()
        q_moduli = ctx.q_chain
        big_q = rns.product(q_moduli)
        big_p = rns.product(ctx.p_moduli)
        for j, (b_j, a_j) in enumerate(key.parts):
            indices = key.digit_indices[j]
            d_j = rns.product(q_moduli[i] for i in indices)
            q_over_d = big_q // d_j
            tilde = q_over_d * pow(q_over_d % d_j, -1, d_j)
            payload = source.mul_scalar_per_limb(
                [(big_p * tilde) % q for q in key.moduli])
            residual = (b_j + a_j * s) - payload
            coeffs = rns.compose_crt(residual.to_coeff())
            assert max(abs(v) for v in coeffs) < 50

    def test_cached_by_level_and_target(self, ctx32_module):
        ctx = ctx32_module
        k1 = ctx.evaluation_key(HYBRID, 2, "mult")
        k2 = ctx.evaluation_key(HYBRID, 2, "mult")
        k3 = ctx.evaluation_key(HYBRID, 3, "mult")
        assert k1 is k2
        assert k1 is not k3

    def test_size_bytes_positive(self, ctx32_module):
        key = ctx32_module.evaluation_key(HYBRID, 3, "mult")
        assert key.size_bytes() > 0


class TestKlssKey:
    def test_digit_count(self, ctx32_module):
        ctx = ctx32_module
        level = 3
        key = ctx.evaluation_key(KLSS, level, "mult")
        expected = keys.klss_digit_count(ctx.moduli_at(level),
                                         ctx.params.klss_digit_bits)
        assert key.num_digits == expected
        assert key.digit_bits == ctx.params.klss_digit_bits

    def test_key_equation_holds(self, ctx32_module):
        """b_j + a_j s = e_j + T 2^(vj) s_from for each digit."""
        ctx = ctx32_module
        level = 2
        key = ctx.evaluation_key(KLSS, level, "mult")
        s = ctx.secret_key.as_rns(key.moduli)
        source = rns.RnsPoly.from_int_coeffs(
            ctx.secret_key.squared_coeffs(), key.moduli).to_eval()
        big_t = rns.product(ctx.t_moduli)
        v = key.digit_bits
        for j, (b_j, a_j) in enumerate(key.parts):
            factor = big_t * (1 << (v * j))
            payload = source.mul_scalar_per_limb(
                [factor % q for q in key.moduli])
            residual = (b_j + a_j * s) - payload
            coeffs = rns.compose_crt(residual.to_coeff())
            assert max(abs(val) for val in coeffs) < 50

    def test_basis_is_q_plus_t(self, ctx32_module):
        ctx = ctx32_module
        key = ctx.evaluation_key(KLSS, 2, "mult")
        assert key.moduli == ctx.moduli_at(2) + ctx.t_moduli
        assert key.aux_count == len(ctx.t_moduli)


class TestRotationKeys:
    def test_rotation_key_distinct_per_step(self, ctx32_module):
        ctx = ctx32_module
        k1 = ctx.rotation_key(HYBRID, 3, 1)
        k2 = ctx.rotation_key(HYBRID, 3, 2)
        assert k1 is not k2

    def test_unknown_method_rejected(self, ctx32_module):
        with pytest.raises(ValueError):
            ctx32_module.evaluation_key("magic", 2, "mult")
