"""AutoPlan: the eval-domain automorphism gather vs its coeff oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.ckks import modmath, primes, rns
from repro.ckks.ntt import bit_reverse_permutation, eval_point_exponents
from repro.ckks.rns import RnsPoly

WIDTH_GRID = (26, 31, 36, 48, 54, 62)


def _basis(n: int, bits: int, count: int = 2) -> tuple[int, ...]:
    return tuple(primes.ntt_primes(count, bits, n))


def _random_poly(n: int, moduli, seed: int = 0) -> RnsPoly:
    rng = np.random.default_rng(seed)
    limbs = [modmath.asresidues(
        rng.integers(0, q, size=n, dtype=np.uint64), q) for q in moduli]
    return RnsPoly(limbs, moduli, rns.COEFF)


def _assert_poly_equal(a: RnsPoly, b: RnsPoly) -> None:
    assert a.moduli == b.moduli and a.form == b.form
    for x, y in zip(a.limbs, b.limbs):
        np.testing.assert_array_equal(np.asarray(x, dtype=object),
                                      np.asarray(y, dtype=object))


def _odd_elements(n: int) -> list[int]:
    # rotations (powers of 5), an arbitrary odd element, and the
    # conjugation 2N - 1
    return [5, 25, pow(5, 7, 2 * n), 3, 2 * n - 1]


class TestEvalPointExponents:
    @pytest.mark.parametrize("n", [4, 8, 64, 256])
    def test_structure(self, n):
        e = eval_point_exponents(n)
        # odd, distinct, exactly the odd residues mod 2N
        assert np.all(e % 2 == 1)
        assert sorted(int(v) for v in e) == list(range(1, 2 * n, 2))
        np.testing.assert_array_equal(
            e, 2 * bit_reverse_permutation(n) + 1)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            eval_point_exponents(12)


class TestEvalVsCoeffOracle:
    """The gather must agree with the coefficient-domain oracle."""

    @pytest.mark.parametrize("bits", WIDTH_GRID)
    @pytest.mark.parametrize("n", [8, 64])
    def test_bit_exact_across_widths(self, n, bits):
        moduli = _basis(n, bits)
        poly = _random_poly(n, moduli, seed=bits)
        ev = poly.to_eval()
        for g in _odd_elements(n):
            oracle = poly.automorphism(g).to_eval()
            _assert_poly_equal(ev.automorphism(g), oracle)

    def test_conjugation_element(self):
        n = 64
        moduli = _basis(n, 36)
        poly = _random_poly(n, moduli, seed=3)
        g = 2 * n - 1
        _assert_poly_equal(poly.to_eval().automorphism(g),
                           poly.automorphism(g).to_eval())

    @given(st.integers(0, 2**30))
    @settings(max_examples=30, deadline=None)
    def test_property_any_odd_element(self, raw):
        n = 8
        g = 2 * raw + 1
        moduli = _basis(n, 30)
        poly = _random_poly(n, moduli, seed=raw % 17)
        _assert_poly_equal(poly.to_eval().automorphism(g),
                           poly.automorphism(g).to_eval())

    def test_identity_element(self):
        n = 16
        poly = _random_poly(n, _basis(n, 30), seed=9)
        _assert_poly_equal(poly.to_eval().automorphism(1), poly.to_eval())

    def test_composition(self):
        """sigma_g . sigma_h == sigma_{g h mod 2N} in eval form."""
        n = 32
        poly = _random_poly(n, _basis(n, 36), seed=4).to_eval()
        g, h = 5, 2 * n - 1
        _assert_poly_equal(poly.automorphism(h).automorphism(g),
                           poly.automorphism((g * h) % (2 * n)))

    def test_even_element_rejected(self):
        poly = _random_poly(8, _basis(8, 30))
        with pytest.raises(ValueError):
            poly.automorphism(4)


class TestZeroNtt:
    """The eval-form automorphism must never touch the NTT."""

    def test_eval_gather_runs_zero_ntts(self):
        n = 64
        poly = _random_poly(n, _basis(n, 36), seed=5).to_eval()
        obs.configure(enabled=True, reset=True)
        try:
            for g in (5, 25, 2 * n - 1):
                poly.automorphism(g)
            snap = obs.snapshot(obs.get_tracer())
            counters = snap["counters"]
            ntt_hits = {name: value for name, value in counters.items()
                        if name.startswith("ntt.")}
            assert not ntt_hits, f"eval automorphism ran NTTs: {ntt_hits}"
            assert counters["rns.auto.eval"] == 3
        finally:
            obs.configure(enabled=False, reset=True)

    def test_counters_distinguish_paths(self):
        n = 16
        poly = _random_poly(n, _basis(n, 30), seed=6)
        obs.configure(enabled=True, reset=True)
        try:
            poly.automorphism(5)                  # coeff path
            poly.to_eval().automorphism(5)        # eval path
            counters = obs.snapshot(obs.get_tracer())["counters"]
            assert counters["rns.auto.coeff"] == 1
            assert counters["rns.auto.eval"] == 1
        finally:
            obs.configure(enabled=False, reset=True)
