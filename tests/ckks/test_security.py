"""Security estimates: the paper's 128-bit claim for Set-I/Set-II."""

import pytest

from repro.ckks import security
from repro.ckks.params import SET_I, SET_II, toy_params


class TestModulusBudget:
    def test_set_i_budget(self):
        # 60 + 35*36 (Q) + 12*36 (P) = 1752 bits
        assert security.total_modulus_bits(SET_I) == 1752

    def test_set_ii_budget(self):
        # 60 + 35*36 (Q) + 5*36 (P) = 1500 bits
        assert security.total_modulus_bits(SET_II) == 1500


class TestPaperClaim:
    """Sec. 6.2: both sets achieve 128-bit security."""

    @pytest.mark.parametrize("params", [SET_I, SET_II],
                             ids=["Set-I", "Set-II"])
    def test_he_standard_table(self, params):
        assert security.meets_he_standard(params)

    @pytest.mark.parametrize("params", [SET_I, SET_II],
                             ids=["Set-I", "Set-II"])
    def test_hermite_estimate_ballpark(self, params):
        # The quick Hermite rule is conservative relative to the
        # lattice estimator (no dimension-for-free etc.); ballpark
        # >= 90 bits here corresponds to the standard's 128-bit row.
        assert security.hermite_security_bits(params) >= 90

    def test_report_structure(self):
        report = security.security_report(SET_II)
        assert report["log2_n"] == 16
        assert report["log2_qp"] <= report["hes_128bit_budget"]


class TestEstimatorBehaviour:
    def test_bigger_modulus_less_secure(self):
        small = SET_II
        big = SET_II.with_(max_level=60)
        assert security.hermite_security_bits(big) < \
            security.hermite_security_bits(small)

    def test_toy_params_are_insecure_and_flagged(self):
        # The scaled-down functional sets are NOT secure — they must
        # fail the standard check rather than silently pass.
        toy = toy_params()
        assert not security.meets_he_standard(toy)

    def test_non_128_target_rejected(self):
        with pytest.raises(ValueError):
            security.meets_he_standard(SET_I, target_bits=192)
