"""Unit + property tests for the modular arithmetic kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks import modmath

Q31 = (1 << 31) - 1          # forces the int64 fast path boundary
Q_SMALL = 268435009          # 28-bit NTT prime
Q_BIG = (1 << 59) - 55       # takes the wide uint64 Barrett path
Q_HUGE = (1 << 70) - 267     # beyond 62 bits: the object path

moduli = pytest.mark.parametrize("q", [17, Q_SMALL, Q_BIG, Q_HUGE])


class TestDtypeDispatch:
    def test_int64_path_for_small_modulus(self):
        assert modmath.uses_int64(Q_SMALL)
        assert modmath.width_path(Q_SMALL) == modmath.NARROW
        assert modmath.zeros(4, Q_SMALL).dtype == np.int64

    def test_wide_path_for_large_modulus(self):
        assert not modmath.uses_int64(Q_BIG)
        assert modmath.width_path(Q_BIG) == modmath.WIDE
        assert modmath.zeros(4, Q_BIG).dtype == np.uint64

    def test_object_path_for_huge_modulus(self):
        assert modmath.width_path(Q_HUGE) == modmath.OBJECT
        assert modmath.zeros(4, Q_HUGE).dtype == object

    def test_narrow_boundary_is_31_bits(self):
        assert modmath.uses_int64((1 << 31) - 1)
        assert not modmath.uses_int64(1 << 31)
        assert modmath.width_path(1 << 31) == modmath.WIDE

    def test_wide_boundary_is_62_bits(self):
        assert modmath.width_path((1 << 62) - 1) == modmath.WIDE
        assert modmath.width_path(1 << 62) == modmath.OBJECT

    def test_kernel_path_override_only_widens(self):
        oracle = modmath.ModulusKernel(Q_BIG, path=modmath.OBJECT)
        assert oracle.dtype == object
        with pytest.raises(ValueError):
            modmath.ModulusKernel(Q_BIG, path=modmath.NARROW)
        with pytest.raises(ValueError):
            modmath.ModulusKernel(Q_HUGE, path=modmath.WIDE)


@moduli
class TestBasicOps:
    def test_zeros(self, q):
        z = modmath.zeros(8, q)
        assert len(z) == 8
        assert all(int(v) == 0 for v in z)

    def test_asresidues_reduces(self, q):
        arr = modmath.asresidues([q, q + 1, -1, 0, 2 * q + 5], q)
        assert [int(v) for v in arr] == [0, 1, q - 1, 0, 5]

    def test_add_sub_roundtrip(self, q):
        rng = np.random.default_rng(0)
        a = modmath.random_uniform(16, q, rng)
        b = modmath.random_uniform(16, q, rng)
        back = modmath.sub(modmath.add(a, b, q), b, q)
        assert all(int(x) == int(y) for x, y in zip(back, a))

    def test_neg_is_additive_inverse(self, q):
        rng = np.random.default_rng(1)
        a = modmath.random_uniform(16, q, rng)
        s = modmath.add(a, modmath.neg(a, q), q)
        assert all(int(v) == 0 for v in s)

    def test_mul_matches_python_ints(self, q):
        rng = np.random.default_rng(2)
        a = modmath.random_uniform(16, q, rng)
        b = modmath.random_uniform(16, q, rng)
        got = modmath.mul(a, b, q)
        for x, y, z in zip(a, b, got):
            assert int(z) == int(x) * int(y) % q

    def test_mul_scalar(self, q):
        rng = np.random.default_rng(3)
        a = modmath.random_uniform(16, q, rng)
        got = modmath.mul_scalar(a, 7, q)
        for x, z in zip(a, got):
            assert int(z) == int(x) * 7 % q

    def test_random_uniform_in_range(self, q):
        rng = np.random.default_rng(4)
        a = modmath.random_uniform(256, q, rng)
        assert all(0 <= int(v) < q for v in a)


class TestScalarHelpers:
    def test_inv_mod(self):
        for q in (17, Q_SMALL, Q_BIG, Q_HUGE):
            for v in (1, 2, 12345 % q):
                assert v * modmath.inv_mod(v, q) % q == 1

    def test_inv_mod_zero_raises(self):
        with pytest.raises(ValueError):
            modmath.inv_mod(0, 17)

    def test_pow_mod(self):
        assert modmath.pow_mod(3, 4, 17) == 81 % 17

    def test_to_signed_centres(self):
        q = 17
        a = modmath.asresidues([0, 1, 8, 9, 16], q)
        signed = modmath.to_signed(a, q)
        assert [int(v) for v in signed] == [0, 1, 8, -8, -1]

    def test_to_signed_wide_path(self):
        a = modmath.asresidues([Q_BIG - 1, 5], Q_BIG)
        signed = modmath.to_signed(a, Q_BIG)
        assert signed.dtype == np.int64
        assert int(signed[0]) == -1
        assert int(signed[1]) == 5

    def test_to_signed_object_path(self):
        a = modmath.asresidues([Q_HUGE - 1, 5], Q_HUGE)
        signed = modmath.to_signed(a, Q_HUGE)
        assert int(signed[0]) == -1
        assert int(signed[1]) == 5


class TestSamplers:
    def test_ternary_values(self, rng):
        s = modmath.random_ternary(512, rng)
        assert set(np.unique(s)).issubset({-1, 0, 1})

    def test_ternary_hamming_weight(self, rng):
        s = modmath.random_ternary(512, rng, hamming_weight=64)
        assert np.count_nonzero(s) == 64

    def test_gaussian_is_small(self, rng):
        e = modmath.random_discrete_gaussian(4096, rng, sigma=3.2)
        assert np.max(np.abs(e)) < 40  # > 10 sigma would be absurd
        assert abs(float(np.mean(e))) < 1.0


@given(st.lists(st.integers(-10**12, 10**12), min_size=1, max_size=32),
       st.sampled_from([17, Q_SMALL, Q_BIG, Q_HUGE]))
@settings(max_examples=60, deadline=None)
def test_property_asresidues_congruent(values, q):
    arr = modmath.asresidues(values, q)
    for v, r in zip(values, arr):
        assert (int(r) - v) % q == 0
        assert 0 <= int(r) < q


@given(st.integers(2, 40), st.sampled_from([Q_SMALL, Q_BIG, Q_HUGE]),
       st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_property_mul_commutative(n, q, seed):
    rng = np.random.default_rng(seed)
    a = modmath.random_uniform(n, q, rng)
    b = modmath.random_uniform(n, q, rng)
    ab = modmath.mul(a, b, q)
    ba = modmath.mul(b, a, q)
    assert all(int(x) == int(y) for x, y in zip(ab, ba))


@given(st.integers(2, 24), st.sampled_from([Q_SMALL, Q_BIG, Q_HUGE]),
       st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_property_distributive(n, q, seed):
    rng = np.random.default_rng(seed)
    a = modmath.random_uniform(n, q, rng)
    b = modmath.random_uniform(n, q, rng)
    c = modmath.random_uniform(n, q, rng)
    left = modmath.mul(a, modmath.add(b, c, q), q)
    right = modmath.add(modmath.mul(a, b, q), modmath.mul(a, c, q), q)
    assert all(int(x) == int(y) for x, y in zip(left, right))
