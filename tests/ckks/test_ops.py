"""Homomorphic operations against plaintext references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks import CkksContext, toy_params
from repro.ckks.keys import HYBRID, KLSS

TOL = 1e-4


def vec(ctx, length=4, seed=0, complex_vals=False):
    rng = np.random.default_rng(seed)
    base = rng.uniform(-2, 2, length)
    if complex_vals:
        base = base + 1j * rng.uniform(-2, 2, length)
    return base


def err(ctx, ct, expected):
    return ctx.noise_infinity(ct, expected)


class TestEncryptDecrypt:
    def test_roundtrip(self, ctx32):
        v = vec(ctx32)
        assert err(ctx32, ctx32.encrypt(np.tile(v, 4)), v) < TOL

    def test_complex_roundtrip(self, ctx32):
        v = vec(ctx32, complex_vals=True)
        assert err(ctx32, ctx32.encrypt(np.tile(v, 4)), v) < TOL

    def test_fresh_level_is_max(self, ctx32):
        ct = ctx32.encrypt(vec(ctx32))
        assert ct.level == ctx32.params.max_level

    def test_encrypt_at_lower_level(self, ctx32):
        v = vec(ctx32)
        ct = ctx32.encrypt(np.tile(v, 4), level=2)
        assert ct.level == 2
        assert err(ctx32, ct, v) < TOL

    def test_different_encryptions_differ(self, ctx32):
        v = np.tile(vec(ctx32), 4)
        c1, c2 = ctx32.encrypt(v), ctx32.encrypt(v)
        assert any(int(a) != int(b) for a, b in
                   zip(c1.c1.limbs[0], c2.c1.limbs[0]))

    def test_ciphertext_size_bytes(self, ctx32):
        ct = ctx32.encrypt(vec(ctx32))
        k = ct.num_limbs
        assert ct.size_bytes() == 2 * k * 4 * ctx32.params.ring_degree


class TestAdditive:
    def test_add(self, ctx32):
        a, b = vec(ctx32, seed=1), vec(ctx32, seed=2)
        ct = ctx32.add(ctx32.encrypt(np.tile(a, 4)),
                       ctx32.encrypt(np.tile(b, 4)))
        assert err(ctx32, ct, a + b) < TOL

    def test_sub(self, ctx32):
        a, b = vec(ctx32, seed=1), vec(ctx32, seed=2)
        ct = ctx32.sub(ctx32.encrypt(np.tile(a, 4)),
                       ctx32.encrypt(np.tile(b, 4)))
        assert err(ctx32, ct, a - b) < TOL

    def test_negate(self, ctx32):
        a = vec(ctx32, seed=3)
        ct = ctx32.negate(ctx32.encrypt(np.tile(a, 4)))
        assert err(ctx32, ct, -a) < TOL

    def test_level_mismatch_rejected(self, ctx32):
        a = ctx32.encrypt(vec(ctx32))
        b = ctx32.level_down(ctx32.encrypt(vec(ctx32)), 1)
        with pytest.raises(ValueError):
            ctx32.add(a, b)

    def test_add_plain(self, ctx32):
        a, b = vec(ctx32, seed=1), vec(ctx32, seed=2)
        ct = ctx32.encrypt(np.tile(a, 4))
        pt = ctx32.plain_for(ct, np.tile(b, 4), scale=ct.scale)
        assert err(ctx32, ctx32.add_plain(ct, pt), a + b) < TOL

    def test_add_scalar(self, ctx32):
        a = vec(ctx32, seed=4)
        ct = ctx32.add_scalar(ctx32.encrypt(np.tile(a, 4)), 2.5)
        assert err(ctx32, ct, a + 2.5) < TOL


class TestMultiplicative:
    @pytest.mark.parametrize("method", [HYBRID, KLSS])
    def test_square(self, ctx32, method):
        a = vec(ctx32, seed=5)
        ct = ctx32.rescale(ctx32.square(ctx32.encrypt(np.tile(a, 4)),
                                        method=method))
        assert err(ctx32, ct, a * a) < 10 * TOL

    @pytest.mark.parametrize("method", [HYBRID, KLSS])
    def test_cross_product(self, ctx32, method):
        a, b = vec(ctx32, seed=6), vec(ctx32, seed=7)
        ct = ctx32.multiply(ctx32.encrypt(np.tile(a, 4)),
                            ctx32.encrypt(np.tile(b, 4)), method=method)
        assert err(ctx32, ctx32.rescale(ct), a * b) < 10 * TOL

    def test_methods_agree(self, ctx32):
        a, b = vec(ctx32, seed=8), vec(ctx32, seed=9)
        ca = ctx32.encrypt(np.tile(a, 4))
        cb = ctx32.encrypt(np.tile(b, 4))
        h = ctx32.decrypt(ctx32.rescale(ctx32.multiply(ca, cb,
                                                       method=HYBRID)))
        k = ctx32.decrypt(ctx32.rescale(ctx32.multiply(ca, cb,
                                                       method=KLSS)))
        assert np.max(np.abs(h - k)) < 10 * TOL

    def test_scale_squares(self, ctx32):
        a = vec(ctx32)
        ct = ctx32.encrypt(np.tile(a, 4))
        prod = ctx32.multiply(ct, ct)
        assert prod.scale == pytest.approx(ct.scale * ct.scale)

    def test_rescale_drops_level_and_scale(self, ctx32):
        ct = ctx32.encrypt(vec(ctx32))
        prod = ctx32.multiply(ct, ct)
        rescaled = ctx32.rescale(prod)
        assert rescaled.level == prod.level - 1
        assert rescaled.scale == pytest.approx(
            prod.scale / prod.moduli[-1])

    def test_depth_chain(self, ctx32):
        a = vec(ctx32, seed=10) * 0.5
        ct = ctx32.encrypt(np.tile(a, 4))
        acc = ct
        expected = a.astype(complex)
        for depth in range(3):
            operand = ctx32.level_down(ct, acc.level)
            acc = ctx32.rescale(ctx32.multiply(acc, operand))
            expected = expected * a
            assert err(ctx32, acc, expected) < 1e-2

    def test_multiply_plain(self, ctx32):
        a, b = vec(ctx32, seed=11), vec(ctx32, seed=12)
        ct = ctx32.encrypt(np.tile(a, 4))
        pt = ctx32.plain_for(ct, np.tile(b, 4))
        out = ctx32.rescale(ctx32.multiply_plain(ct, pt))
        assert err(ctx32, out, a * b) < 10 * TOL

    def test_multiply_scalar(self, ctx32):
        a = vec(ctx32, seed=13)
        ct = ctx32.rescale(ctx32.multiply_scalar(
            ctx32.encrypt(np.tile(a, 4)), -1.75))
        assert err(ctx32, ct, -1.75 * a) < 10 * TOL

    def test_rescale_at_level_zero_rejected(self, ctx32):
        ct = ctx32.level_down(ctx32.encrypt(vec(ctx32)), 0)
        with pytest.raises(ValueError):
            ctx32.rescale(ct)


class TestRotation:
    @pytest.mark.parametrize("steps", [1, 2, 5, 15])
    def test_rotate(self, ctx32, steps):
        a = vec(ctx32, length=16, seed=14)
        ct = ctx32.rotate(ctx32.encrypt(a), steps)
        assert err(ctx32, ct, np.roll(a, -steps)) < TOL * 10

    def test_rotate_zero_is_identity(self, ctx32):
        a = vec(ctx32, seed=15)
        ct = ctx32.encrypt(np.tile(a, 4))
        assert err(ctx32, ctx32.rotate(ct, 0), a) < TOL

    def test_rotate_full_cycle(self, ctx32):
        a = vec(ctx32, seed=16)
        ct = ctx32.encrypt(np.tile(a, 4))
        n_slots = ctx32.params.num_slots
        assert err(ctx32, ctx32.rotate(ct, n_slots), a) < TOL

    @pytest.mark.parametrize("method", [HYBRID, KLSS])
    def test_rotate_methods(self, ctx32, method):
        a = vec(ctx32, length=16, seed=17)
        ct = ctx32.rotate(ctx32.encrypt(a), 3, method=method)
        assert err(ctx32, ct, np.roll(a, -3)) < TOL * 10

    def test_rotation_composes(self, ctx32):
        a = vec(ctx32, length=16, seed=18)
        ct = ctx32.encrypt(a)
        double = ctx32.rotate(ctx32.rotate(ct, 2), 3)
        single = ctx32.rotate(ct, 5)
        diff = np.max(np.abs(ctx32.decrypt(double) -
                             ctx32.decrypt(single)))
        assert diff < TOL * 10

    def test_conjugate(self, ctx32):
        a = vec(ctx32, seed=19, complex_vals=True)
        ct = ctx32.conjugate(ctx32.encrypt(np.tile(a, 4)))
        assert err(ctx32, ct, np.conj(a)) < TOL * 10


class TestHoisting:
    def test_matches_individual_rotations(self, ctx32):
        a = vec(ctx32, length=16, seed=20)
        ct = ctx32.encrypt(a)
        steps = [1, 2, 4, 7]
        hoisted = ctx32.hoisted_rotate(ct, steps)
        for s, rot in zip(steps, hoisted):
            direct = ctx32.decrypt(ctx32.rotate(ct, s))
            assert np.max(np.abs(ctx32.decrypt(rot) - direct)) < TOL * 10

    @pytest.mark.parametrize("method", [HYBRID, KLSS])
    def test_hoisting_correct_values(self, ctx32, method):
        a = vec(ctx32, length=16, seed=21)
        ct = ctx32.encrypt(a)
        for s, rot in zip([1, 3], ctx32.hoisted_rotate(ct, [1, 3],
                                                       method=method)):
            assert err(ctx32, rot, np.tile(np.roll(a, -s),
                                           1)) < TOL * 10 or \
                np.max(np.abs(ctx32.decrypt(rot)[:16] -
                              np.roll(a, -s))) < TOL * 10

    def test_empty_batch(self, ctx32):
        ct = ctx32.encrypt(vec(ctx32))
        assert ctx32.hoisted_rotate(ct, []) == []


class TestMethodSelector:
    def test_auto_uses_selector(self, params32):
        calls = []

        def selector(op, level, hoisting):
            calls.append((op, level, hoisting))
            return HYBRID

        ctx = CkksContext(params32, seed=3, method_selector=selector)
        a = np.tile(vec(ctx), 4)
        ct = ctx.encrypt(a)
        ctx.multiply(ct, ct, method="auto")
        assert calls and calls[0][0] == "HMult"

    def test_unknown_method_rejected(self, ctx32):
        ct = ctx32.encrypt(vec(ctx32))
        with pytest.raises(ValueError):
            ctx32.multiply(ct, ct, method="nonsense")


class TestDeeperContext:
    def test_bigger_ring_pipeline(self, ctx64):
        """End-to-end on N=64: mult -> rotate -> conj -> mult."""
        a = vec(ctx64, length=8, seed=30) * 0.5
        ct = ctx64.encrypt(np.tile(a, 4))
        sq = ctx64.rescale(ctx64.multiply(ct, ct, method=HYBRID))
        rot = ctx64.rotate(sq, 2, method=KLSS)
        expected = np.roll(a * a, -2)
        assert ctx64.noise_infinity(rot, expected) < 1e-2


@given(st.integers(0, 2**31 - 1), st.integers(1, 15))
@settings(max_examples=10, deadline=None)
def test_property_rotation_is_cyclic_shift(seed, steps):
    from repro.ckks import CkksContext as C, toy_params as tp
    ctx = _SHARED_CTX
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, 16)
    ct = ctx.rotate(ctx.encrypt(a), steps)
    assert ctx.noise_infinity(ct, np.roll(a, -steps)) < 1e-3


from repro.ckks import CkksContext as _C, toy_params as _tp  # noqa: E402
_SHARED_CTX = _C(_tp(ring_degree=32, max_level=3, alpha=2,
                     prime_bits=28), seed=7)
