"""The bounded NTT-plan cache: eviction must never corrupt results."""

import numpy as np
import pytest

from repro.ckks import primes, rns
from repro.ckks.rns import (PLAN_CACHE_MAXSIZE, RnsPoly, clear_plan_cache,
                            get_plan, plan_cache_info)

N = 8


def _many_primes(count: int, bits: int = 18) -> list[int]:
    """``count`` distinct NTT-friendly primes for ring degree N."""
    found = primes.ntt_primes(count, bits, N)
    assert len(set(found)) == count
    return found


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestBound:
    def test_cache_has_explicit_maxsize(self):
        info = plan_cache_info()
        assert info.maxsize == PLAN_CACHE_MAXSIZE
        assert info.maxsize is not None and info.maxsize > 0

    def test_maxsize_covers_paper_parameter_sets(self):
        # Both parameter sets' primes (ciphertext chain + specials)
        # must fit simultaneously with headroom for the KLSS wide
        # bases — eviction thrash on real workloads would be a silent
        # performance bug.
        from repro.ckks.params import SET_I, SET_II
        working_set = (SET_I.num_limbs_fresh + SET_I.num_special_primes
                       + SET_II.num_limbs_fresh
                       + SET_II.num_special_primes)
        assert 2 * working_set <= PLAN_CACHE_MAXSIZE

    def test_eviction_happens_beyond_maxsize(self):
        for q in _many_primes(PLAN_CACHE_MAXSIZE + 8):
            get_plan(N, q)
        info = plan_cache_info()
        assert info.currsize == PLAN_CACHE_MAXSIZE
        assert info.misses >= PLAN_CACHE_MAXSIZE + 8


class TestEvictionCorrectness:
    def test_rebuilt_plan_matches_original_tables(self):
        moduli = _many_primes(PLAN_CACHE_MAXSIZE + 4)
        first = moduli[0]
        original = get_plan(N, first)
        reference_fwd = original.forward(np.arange(N))
        for q in moduli[1:]:          # churn: evicts `first`
            get_plan(N, q)
        rebuilt = get_plan(N, first)
        assert rebuilt is not original          # it really was evicted
        assert rebuilt.modulus == first and rebuilt.n == N
        np.testing.assert_array_equal(rebuilt.forward(np.arange(N)),
                                      reference_fwd)
        np.testing.assert_array_equal(
            rebuilt._psi_rev, original._psi_rev)
        np.testing.assert_array_equal(
            rebuilt._psi_inv_rev, original._psi_inv_rev)

    def test_roundtrip_survives_cache_churn(self):
        moduli = _many_primes(PLAN_CACHE_MAXSIZE + 4)
        rng = np.random.default_rng(7)
        basis = tuple(moduli[:3])
        coeffs = rng.integers(-(1 << 12), 1 << 12, size=N)
        poly = RnsPoly.from_int_coeffs(coeffs, basis)
        before = poly.to_eval()
        for q in moduli[3:]:          # evict the basis plans
            get_plan(N, q)
        after = poly.to_eval()        # rebuilt plans must agree
        for a, b in zip(before.limbs, after.limbs):
            np.testing.assert_array_equal(a, b)
        back = after.to_coeff()
        for limb, orig in zip(back.limbs, poly.limbs):
            np.testing.assert_array_equal(limb, orig)

    def test_plans_for_same_pair_are_shared_until_evicted(self):
        q = _many_primes(1)[0]
        assert get_plan(N, q) is get_plan(N, q)
        assert plan_cache_info().hits >= 1


class TestAutoPlanCache:
    """The automorphism-plan cache: bounded, shared, eviction-safe."""

    @pytest.fixture(autouse=True)
    def _fresh(self):
        rns.clear_auto_plan_cache()
        yield
        rns.clear_auto_plan_cache()

    def test_cache_has_explicit_maxsize(self):
        info = rns.auto_plan_cache_info()
        assert info.maxsize == PLAN_CACHE_MAXSIZE
        assert info.maxsize is not None and info.maxsize > 0

    def test_equivalent_elements_share_one_entry(self):
        # g and g + 2N act identically, so they must normalise to one
        # cache entry (a split cache would double the working set).
        assert rns.get_auto_plan(N, 3) is rns.get_auto_plan(N, 3 + 2 * N)

    def test_eviction_happens_beyond_maxsize(self):
        # ring large enough that every odd g stays distinct mod 2N
        for g in range(1, 2 * (PLAN_CACHE_MAXSIZE + 8), 2):
            rns.get_auto_plan(1 << 10, g)
        info = rns.auto_plan_cache_info()
        assert info.currsize == PLAN_CACHE_MAXSIZE
        assert info.misses >= PLAN_CACHE_MAXSIZE + 8

    def test_rebuilt_plan_matches_original_tables(self):
        original = rns.get_auto_plan(N, 5)
        # churn with distinct odd elements at a larger ring so the
        # (N, g) keys never collide with the probe entry
        for g in range(1, 2 * (PLAN_CACHE_MAXSIZE + 4), 2):
            rns.get_auto_plan(1 << 10, g)
        rebuilt = rns.get_auto_plan(N, 5)
        assert rebuilt is not original          # it really was evicted
        np.testing.assert_array_equal(rebuilt.eval_perm,
                                      original.eval_perm)
        np.testing.assert_array_equal(rebuilt.coeff_dest,
                                      original.coeff_dest)
        np.testing.assert_array_equal(rebuilt.coeff_negate,
                                      original.coeff_negate)

    def test_automorphism_survives_cache_churn(self):
        moduli = tuple(_many_primes(2))
        rng = np.random.default_rng(3)
        coeffs = rng.integers(-(1 << 12), 1 << 12, size=N)
        poly = RnsPoly.from_int_coeffs(coeffs, moduli).to_eval()
        before = poly.automorphism(5)
        for g in range(1, 2 * (PLAN_CACHE_MAXSIZE + 4), 2):
            rns.get_auto_plan(1 << 10, g)     # evict the (N, 5) plan
        after = poly.automorphism(5)          # rebuilt plan must agree
        for a, b in zip(before.limbs, after.limbs):
            np.testing.assert_array_equal(a, b)

    def test_hit_and_miss_counters(self):
        from repro import obs
        obs.configure(enabled=True, reset=True)
        try:
            rns.get_auto_plan(N, 7)
            rns.get_auto_plan(N, 7)
            counters = obs.snapshot(obs.get_tracer())["counters"]
            assert counters["rns.auto.plan_miss"] == 1
            assert counters["rns.auto.plan_hit"] == 1
        finally:
            obs.configure(enabled=False, reset=True)


class TestCrtConstantsCache:
    """The CRT-constants cache must be bounded like the NTT-plan cache."""

    @pytest.fixture(autouse=True)
    def _fresh(self):
        rns.clear_crt_constants_cache()
        yield
        rns.clear_crt_constants_cache()

    def test_cache_has_explicit_maxsize(self):
        info = rns.crt_constants_cache_info()
        assert info.maxsize == PLAN_CACHE_MAXSIZE
        assert info.maxsize is not None and info.maxsize > 0

    def test_eviction_happens_beyond_maxsize(self):
        pool = _many_primes(PLAN_CACHE_MAXSIZE + 9)
        for i in range(PLAN_CACHE_MAXSIZE + 8):
            rns._crt_constants((pool[i], pool[i + 1]))
        info = rns.crt_constants_cache_info()
        assert info.currsize == PLAN_CACHE_MAXSIZE
        assert info.misses >= PLAN_CACHE_MAXSIZE + 8

    def test_rebuilt_constants_survive_cache_churn(self):
        pool = _many_primes(PLAN_CACHE_MAXSIZE + 9)
        basis = tuple(pool[:3])
        rng = np.random.default_rng(11)
        coeffs = [int(v) for v in rng.integers(-(1 << 12), 1 << 12, size=N)]
        poly = rns.from_big_ints(coeffs, basis, N)
        before = rns.compose_crt(poly)
        original = rns._crt_constants(basis)
        for i in range(PLAN_CACHE_MAXSIZE + 8):   # churn: evicts `basis`
            rns._crt_constants((pool[i], pool[i + 1]))
        rebuilt = rns._crt_constants(basis)
        assert rebuilt is not original            # it really was evicted
        assert rebuilt == original                # same pure-function values
        assert rns.compose_crt(poly) == before == coeffs
