"""Wide (uint64 Barrett) kernels vs the object-path exactness oracle.

The wide path must be *bit-identical* to arbitrary-precision Python
arithmetic — not merely close — at the paper's real word lengths:
36-bit scale primes, 60-bit KLSS words, and moduli pushed against the
2^62 path boundary.  Edge residues {0, 1, q-1} ride along with every
random vector.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks import modmath, primes, rns
from repro.ckks.ntt import NttPlan
from repro.ckks.rns import RnsPoly

N = 64
Q36 = primes.ntt_primes(1, 36, N)[0]
Q60 = primes.ntt_primes(1, 60, N)[0]
Q62 = primes.ntt_primes(1, 62, N)[0]  # near the 2^62 wide boundary

wide_moduli = pytest.mark.parametrize("q", [Q36, Q60, Q62])


def _vector(q: int, seed: int, n: int = N) -> list[int]:
    rng = np.random.default_rng(seed)
    values = [int(v) for v in rng.integers(0, q, size=n)]
    values[:3] = [0, 1, q - 1]  # always include the edge residues
    return values


def _as_wide_and_oracle(values, q):
    wide = modmath.get_kernel(q)
    oracle = modmath.get_kernel(q, modmath.OBJECT)
    assert wide.path == modmath.WIDE
    return wide.asresidues(values), oracle.asresidues(values), wide, oracle


@wide_moduli
class TestElementwiseMatchesOracle:
    def test_mul(self, q):
        a, ao, wide, oracle = _as_wide_and_oracle(_vector(q, 1), q)
        b, bo, _, _ = _as_wide_and_oracle(_vector(q, 2), q)
        got = wide.mul(a, b)
        want = oracle.mul(ao, bo)
        assert got.dtype == np.uint64
        assert [int(v) for v in got] == [int(v) for v in want]

    def test_add_sub_neg(self, q):
        a, ao, wide, oracle = _as_wide_and_oracle(_vector(q, 3), q)
        b, bo, _, _ = _as_wide_and_oracle(_vector(q, 4), q)
        for wide_op, oracle_op in ((wide.add, oracle.add),
                                   (wide.sub, oracle.sub)):
            assert ([int(v) for v in wide_op(a, b)]
                    == [int(v) for v in oracle_op(ao, bo)])
        assert ([int(v) for v in wide.neg(a)]
                == [int(v) for v in oracle.neg(ao)])

    def test_mul_scalar_and_shoup(self, q):
        a, ao, wide, oracle = _as_wide_and_oracle(_vector(q, 5), q)
        for s in (0, 1, q - 1, 12345678901 % q):
            want = [int(v) for v in oracle.mul_scalar(ao, s)]
            assert [int(v) for v in wide.mul_scalar(a, s)] == want
            w, w_shoup = wide.shoup(s)
            assert [int(v) for v in wide.mul_shoup(a, w, w_shoup)] == want

    def test_to_signed(self, q):
        a, ao, wide, oracle = _as_wide_and_oracle(_vector(q, 6), q)
        assert ([int(v) for v in wide.to_signed(a)]
                == [int(v) for v in oracle.to_signed(ao)])


@wide_moduli
class TestNttMatchesOracle:
    def test_forward_bit_identical(self, q):
        x = _vector(q, 7)
        wide_plan = NttPlan(N, q)
        oracle_plan = NttPlan(N, q, path=modmath.OBJECT)
        assert wide_plan.path == modmath.WIDE
        got = wide_plan.forward(modmath.asresidues(x, q))
        want = oracle_plan.forward(np.array(x, dtype=object))
        assert [int(v) for v in got] == [int(v) for v in want]

    def test_inverse_bit_identical(self, q):
        x = _vector(q, 8)
        wide_plan = NttPlan(N, q)
        oracle_plan = NttPlan(N, q, path=modmath.OBJECT)
        got = wide_plan.inverse(modmath.asresidues(x, q))
        want = oracle_plan.inverse(np.array(x, dtype=object))
        assert [int(v) for v in got] == [int(v) for v in want]

    def test_roundtrip(self, q):
        x = modmath.asresidues(_vector(q, 9), q)
        plan = NttPlan(N, q)
        back = plan.inverse(plan.forward(x))
        assert [int(v) for v in back] == [int(v) for v in x]


class TestBaseConvertMatchesOracle:
    """HPS base conversion: wide limbs vs an exact big-int rebuild."""

    def _oracle_base_convert(self, limbs, moduli, target):
        # Independent reference: y_i = x_i * (Q/q_i)^-1 mod q_i, then
        # out_j = sum_i y_i * (Q/q_i) mod p_j — all in Python ints.
        big_q = 1
        for q in moduli:
            big_q *= q
        n = len(limbs[0])
        out = []
        for p in target:
            acc = [0] * n
            for limb, q in zip(limbs, moduli):
                hat = big_q // q
                hat_inv = pow(hat % q, -1, q)
                for i in range(n):
                    y = int(limb[i]) * hat_inv % q
                    acc[i] = (acc[i] + y * hat) % p
            out.append(acc)
        return out

    @pytest.mark.parametrize("bits,target_bits", [(36, 36), (60, 60),
                                                  (36, 60)])
    def test_matches_exact_reference(self, bits, target_bits):
        moduli = tuple(primes.ntt_primes(3, bits, N))
        target = tuple(primes.ntt_primes(2, target_bits, N,
                                         exclude=set(moduli)))
        limbs = [modmath.asresidues(_vector(q, 20 + i), q)
                 for i, q in enumerate(moduli)]
        poly = RnsPoly(limbs, moduli, rns.COEFF)
        got = rns.base_convert(poly, target)
        want = self._oracle_base_convert(limbs, moduli, target)
        for got_limb, want_limb in zip(got.limbs, want):
            assert [int(v) for v in got_limb] == want_limb


@given(st.sampled_from([Q36, Q60, Q62]), st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_property_mul_matches_oracle(q, seed):
    rng = np.random.default_rng(seed)
    a = [int(v) for v in rng.integers(0, q, size=32)]
    b = [int(v) for v in rng.integers(0, q, size=32)]
    a[:3], b[:3] = [0, 1, q - 1], [q - 1, q - 1, q - 1]
    wide = modmath.get_kernel(q)
    got = wide.mul(wide.asresidues(a), wide.asresidues(b))
    assert [int(v) for v in got] == [x * y % q for x, y in zip(a, b)]


@given(st.sampled_from([Q36, Q60, Q62]), st.integers(0, 2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_property_ntt_roundtrip_matches_oracle(q, seed):
    rng = np.random.default_rng(seed)
    x = [int(v) for v in rng.integers(0, q, size=N)]
    x[:3] = [0, 1, q - 1]
    wide_plan = NttPlan(N, q)
    oracle_plan = NttPlan(N, q, path=modmath.OBJECT)
    fw = wide_plan.forward(modmath.asresidues(x, q))
    fo = oracle_plan.forward(np.array(x, dtype=object))
    assert [int(v) for v in fw] == [int(v) for v in fo]
    assert [int(v) for v in wide_plan.inverse(fw)] == x
