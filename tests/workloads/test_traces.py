"""Workload trace generators: structure, level budgets, composition."""

import pytest

from repro.ckks.params import SET_II, toy_params
from repro.core import optrace
from repro.workloads import bootstrap_trace, helr_trace, resnet20_trace
from repro.workloads.bootstrap import bootstrap_shape
from repro.workloads.helr import helr_iteration


class TestBootstrapTrace:
    def test_stage_order(self):
        trace = bootstrap_trace()
        assert trace.stages() == ["ModRaise", "CoeffToSlot", "EvalMod",
                                  "SlotToCoeff"]

    def test_level_budget_lands_on_leff(self):
        # The generator asserts internally; just confirm it builds
        # and the lowest key-switch level is >= L_eff.
        trace = bootstrap_trace()
        levels = [op.level for op in trace.key_switch_ops()]
        assert min(levels) >= SET_II.effective_level
        assert max(levels) == SET_II.max_level

    def test_modraise_first(self):
        trace = bootstrap_trace()
        assert trace[0].kind == optrace.MOD_RAISE

    def test_has_conjugation(self):
        hist = bootstrap_trace().kind_histogram()
        assert hist[optrace.CONJ] == 1

    def test_rotations_dominate_keyswitches(self):
        shape = bootstrap_shape()
        assert shape.rotations > shape.hmults  # HRot-heavy: Sec. 3.1

    def test_hoist_groups_per_matrix(self):
        trace = bootstrap_trace()
        groups = trace.hoist_groups()
        assert len(groups) == 6  # 3 CtS + 3 StC matrices

    def test_thin_bootstrap_smaller(self):
        full = bootstrap_trace(slots_fraction=1.0)
        thin = bootstrap_trace(slots_fraction=0.5)
        assert len(thin) < len(full)
        assert len(thin.key_switch_ops()) < len(full.key_switch_ops())

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            bootstrap_trace(slots_fraction=0.0)
        with pytest.raises(ValueError):
            bootstrap_trace(slots_fraction=1.5)

    def test_toy_params_supported(self):
        params = toy_params(max_level=31, boot_levels=27,
                            ring_degree=32, alpha=2)
        trace = bootstrap_trace(params)
        assert len(trace) > 0

    def test_double_rescale_convention(self):
        # with double rescale, each matrix stage burns two primes
        trace = bootstrap_trace()
        cts_levels = sorted({op.level for op in trace
                             if op.stage == "CoeffToSlot"
                             and op.kind == optrace.HROT}, reverse=True)
        assert cts_levels == [35, 33, 31]


class TestHelrTrace:
    def test_batch_validation(self):
        with pytest.raises(ValueError):
            helr_iteration(batch=512)

    def test_1024_heavier_than_256(self):
        t256 = helr_trace(batch=256)
        t1024 = helr_trace(batch=1024)
        assert len(t1024) > len(t256)

    def test_iteration_stages(self):
        stages = helr_iteration(batch=256).stages()
        assert stages == ["Gradient", "Sigmoid", "Update"]

    def test_includes_thin_bootstrap(self):
        trace = helr_trace(batch=256)
        assert "CoeffToSlot" in trace.stages()

    def test_multi_iteration_repeats(self):
        one = helr_trace(batch=256, iterations=1)
        four = helr_trace(batch=256, iterations=4)
        assert len(four) == 4 * len(one)
        assert len(four.hoist_groups()) == 4 * len(one.hoist_groups())

    def test_application_levels_at_leff(self):
        iter_trace = helr_iteration(batch=256)
        assert max(op.level for op in iter_trace) == \
            SET_II.effective_level


class TestResnetTrace:
    def test_composition(self):
        trace = resnet20_trace()
        hist = trace.kind_histogram()
        assert hist[optrace.HMULT] > 50    # ReLU + EvalMod mults
        assert hist[optrace.HROT] > 300    # convs + DFT stages
        assert hist[optrace.PMULT] > 500

    def test_bootstrap_dominates(self):
        """Sec. 7.2: bootstrapping is most of ResNet-20's time; at the
        trace level most key-switches sit inside bootstrap stages."""
        trace = resnet20_trace()
        boot_stages = {"ModRaise", "CoeffToSlot", "EvalMod",
                       "SlotToCoeff"}
        ks = trace.key_switch_ops()
        inside = sum(1 for op in ks if op.stage in boot_stages)
        assert inside / len(ks) > 0.6

    def test_has_conv_and_relu_stages(self):
        stages = resnet20_trace().stages()
        assert "Conv" in stages and "ReLU" in stages
        assert "AvgPool" in stages and "FC" in stages

    def test_levels_respect_budget(self):
        trace = resnet20_trace()
        assert all(op.level <= SET_II.max_level for op in trace)
        assert all(op.level >= 0 for op in trace)
