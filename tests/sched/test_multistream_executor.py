"""Differential multi-stream executor tests.

A merged K-stream execution must be bit-exact against K independent
serial runs — per stream, per ciphertext — including interleaved
hybrid and KLSS key-switches at both evaluated word widths (36- and
60-bit primes).  The merged graph interleaves streams arbitrarily, so
equality proves the merge fabricated no cross-stream coupling and
dropped no intra-stream ordering.
"""

import numpy as np
import pytest

from repro.core.optrace import TraceBuilder
from repro.sched import (DataflowGraph, FunctionalExecutor,
                         StreamExecutionCheck, merge_graphs, replicate,
                         replicate_graph)
from repro.workloads import helr


def keyswitch_trace(name: str = "ks-mix") -> "OpTrace":
    """Hybrid- and KLSS-eligible key-switches interleaved: hmults and
    rotations (hoisted and not) across three ciphertext chains."""
    tb = TraceBuilder(name)
    for _ in range(3):
        ct = tb.fresh_ct()
        tb.hmult(ct, 10)
        tb.rotations(ct, 10, [1, 2, 4], hoisted=True)
        tb.rescale(ct, 10)
        tb.hrot(ct, 9, 7)
        tb.hmult(ct, 9)
        tb.rescale(ct, 9)
    return tb.build().check()


@pytest.fixture(scope="module")
def ex36():
    return FunctionalExecutor(ring_degree=64, num_limbs=2,
                              prime_bits=36)


@pytest.fixture(scope="module")
def ex60():
    return FunctionalExecutor(ring_degree=64, num_limbs=2,
                              prime_bits=60)


@pytest.fixture(scope="module")
def trace():
    return keyswitch_trace()


class TestMergedBitExact:
    def test_replicated_streams_36bit(self, ex36, trace):
        check = ex36.verify_streams([trace] * 3, workers=2)
        assert check.bit_exact, check.mismatched
        assert check.streams == 3

    def test_replicated_streams_60bit(self, ex60, trace):
        check = ex60.verify_streams([trace] * 3, workers=2)
        assert check.bit_exact, check.mismatched
        assert check.streams == 3

    def test_distinct_traces_per_stream(self, ex36, trace):
        """Heterogeneous streams: different programs, one merged run."""
        tb = TraceBuilder("other")
        ct = tb.fresh_ct()
        tb.pmult(ct, 8)
        tb.hrot(ct, 8, 3)
        tb.rescale(ct, 8)
        other = tb.build().check()
        check = ex36.verify_streams([trace, other], workers=2)
        assert check.bit_exact, check.mismatched
        assert check.streams == 2
        assert check.num_ops == len(trace) + len(other)

    def test_helr_iteration_streams(self, ex36):
        """The bench gate's shape: real workload ops, 4 streams."""
        iteration = helr.helr_iteration()
        check = ex36.verify_streams([iteration] * 4, workers=2)
        assert check.bit_exact, check.mismatched
        assert check.num_nodes > 0
        assert check.num_cts > 0

    def test_stream_tagged_graph_accepted(self, ex36, trace):
        """verify_streams against an externally merged graph (what the
        scheduler actually consumes)."""
        graph = replicate_graph(DataflowGraph.from_trace(trace), 2)
        check = ex36.verify_streams([trace] * 2, graph=graph,
                                    workers=2)
        assert check.bit_exact, check.mismatched

    def test_multistream_trace_object_accepted(self, ex36, trace):
        """A MultiStreamTrace works wherever a list of streams does."""
        bundle = replicate(trace, 2)
        check = ex36.verify_streams(bundle, workers=2)
        assert check.bit_exact, check.mismatched
        assert check.streams == 2


class TestStreamIndependence:
    def test_streams_carry_independent_data(self, ex36, trace):
        """Different stream seeds: the per-stream final states must
        differ (identical states would mean the seeds collapsed and
        bit-exactness proves nothing)."""
        states, _ = ex36.run_merged([trace] * 2, workers=2)
        shared = [ct for ct in states[0]
                  if np.array_equal(states[0][ct], states[1][ct])]
        assert not shared, shared

    def test_stream_zero_keeps_base_seed(self, ex36, trace):
        """A 1-stream merged run equals the plain serial run — stream
        0's seed is the executor's base seed."""
        merged, _ = ex36.run_merged([trace], workers=2)
        plain = ex36.run_serial(trace)
        assert set(merged[0]) == set(plain)
        for ct in plain:
            assert np.array_equal(merged[0][ct], plain[ct]), ct

    def test_stream_seeds_distinct(self, ex36):
        seeds = [ex36.stream_seed(s) for s in range(16)]
        assert len(set(seeds)) == len(seeds)
        assert seeds[0] == ex36.seed
        assert all(0 <= s < 2 ** 64 for s in seeds)

    def test_serial_streams_match_per_seed_runs(self, ex36, trace):
        """run_serial_streams is literally K seeded serial runs."""
        reference = ex36.run_serial_streams([trace] * 2)
        for s in range(2):
            solo = ex36.run_serial(trace, seed=ex36.stream_seed(s))
            for ct in solo:
                assert np.array_equal(reference[s][ct], solo[ct])


class TestExecutionPaths:
    def test_inline_fallback_matches_pool(self, ex36, trace):
        """The inline (no process pool) path computes the same bits."""
        graph = ex36._merged_graph([trace] * 2)
        slots = {}
        for nid in range(len(graph.nodes)):
            node = graph.node(nid)
            slots.setdefault((node.stream, node.ct_id), len(slots))
        inline = ex36._run_merged_inline([trace] * 2, graph, slots)
        pooled, _ = ex36.run_merged([trace] * 2, graph=graph,
                                    workers=2)
        for s in range(2):
            for ct in pooled[s]:
                assert np.array_equal(inline[s][ct], pooled[s][ct]), \
                    (s, ct)

    def test_check_reports_shape(self, ex36, trace):
        check = ex36.verify_streams([trace] * 2, workers=2)
        assert isinstance(check, StreamExecutionCheck)
        assert check.workers == 2
        assert check.num_ops == 2 * len(trace)
        assert check.num_cts == 2 * len({op.ct_id for op in trace})
        assert check.mismatched == []

    def test_mismatch_localised_to_stream_and_ct(self, ex36, trace):
        """Corrupting one stream's state shows up as that stream's
        (stream, ct) pair — the diff localises faults."""
        graph = ex36._merged_graph([trace] * 2)
        reference = ex36.run_serial_streams([trace] * 2)
        merged, _ = ex36.run_merged([trace] * 2, graph=graph,
                                    workers=2)
        victim = sorted(merged[1])[0]
        merged[1][victim] = merged[1][victim] + np.uint64(1)
        mismatched = [(s, ct)
                      for s, ref in enumerate(reference)
                      for ct in ref
                      if not np.array_equal(ref[ct], merged[s][ct])]
        assert mismatched == [(1, victim)]


class TestMergedGraphShape:
    def test_merged_graph_has_no_cross_stream_edges(self, ex36, trace):
        graph = ex36._merged_graph([trace] * 3)
        for node in graph.nodes:
            for pred in node.preds:
                assert graph.node(pred).stream == node.stream

    def test_node_indices_stay_local(self, ex36, trace):
        """Merged nodes keep per-stream local trace indices (what the
        seeded replay keys the op RNG on)."""
        graph = ex36._merged_graph([trace] * 2)
        for node in graph.nodes:
            assert all(i < len(trace) for i in node.indices)
