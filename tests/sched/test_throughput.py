"""Throughput-mode scheduler: the 6x gate, determinism, observability.

The flagship claim this suite pins: at 4 clusters / 8 streams the
software-pipelined schedule of HELR256 amortizes to >= 6x the serial
single-pipeline latency (vs ~3.9x for latency mode, whose speedup one
program's dataflow caps), with structural stalls under 5% of
cluster-time and zero dependency violations — and the whole timeline
is bit-reproducible run over run.
"""

import functools

import pytest

from repro import obs
from repro.core.optrace import TraceBuilder
from repro.hw.config import FAST_CONFIG
from repro.sched import (DEFAULT_PIPELINE_DEPTH, ClusterScheduler,
                         ScheduledEngine, ThroughputResult,
                         replicate_graph, serial_reference,
                         throughput_scaling)
from repro.workloads import helr_trace


@functools.lru_cache(maxsize=None)
def engine_at(clusters: int, **kwargs) -> ScheduledEngine:
    config = FAST_CONFIG.with_(name=f"FAST-{clusters}C",
                               clusters=clusters)
    return ScheduledEngine(config, **kwargs)


@pytest.fixture(scope="module")
def helr():
    return helr_trace(batch=256)


@pytest.fixture(scope="module")
def serial_s(helr):
    return serial_reference(FAST_CONFIG).run(helr).total_s


@pytest.fixture(scope="module")
def flagship(helr, serial_s):
    """The gated point: 4 clusters, 8 streams, default depth."""
    result = engine_at(4).run_streams(helr, 8)
    result.serial_total_s = serial_s
    return result


def small_trace() -> "OpTrace":
    tb = TraceBuilder("tiny")
    for _ in range(2):
        ct = tb.fresh_ct()
        tb.hmult(ct, 6)
        tb.hrot(ct, 6, 2)
        tb.rescale(ct, 6)
    return tb.build().check()


class TestAmortizedSpeedupGate:
    def test_six_x_amortized_at_4c_8s(self, flagship):
        assert flagship.amortized_speedup >= 6.0, \
            flagship.amortized_speedup

    def test_zero_dependency_violations(self, flagship):
        assert flagship.dependency_violations == 0

    def test_structural_stalls_under_five_percent(self, flagship):
        fraction = flagship.stalls["structural_s"] / (
            flagship.total_s * flagship.clusters)
        assert fraction < 0.05, fraction

    def test_beats_latency_mode(self, helr, serial_s, flagship):
        """Streaming must buy what one program's dataflow cannot:
        the amortized per-stream time beats the 4-cluster latency-mode
        makespan of a single program."""
        latency = engine_at(4).run(helr)
        assert flagship.amortized_s < latency.total_s

    def test_amortized_improves_with_streams(self, helr, serial_s):
        engine = engine_at(4)
        amortized = []
        for streams in (1, 4, 8):
            result = engine.run_streams(helr, streams)
            result.serial_total_s = serial_s
            amortized.append(result.amortized_s)
        assert amortized[0] > amortized[1] > amortized[2], amortized

    def test_deeper_admission_helps_at_the_gate(self, helr, serial_s):
        """The depth default exists for a reason: a depth-8 front end
        measurably underfills the units vs the default at 4C/8S."""
        shallow = ScheduledEngine(
            FAST_CONFIG.with_(name="FAST-4C", clusters=4),
            pipeline_depth=8).run_streams(helr, 8)
        default = engine_at(4).run_streams(helr, 8)
        assert default.total_s < shallow.total_s


class TestResultPackaging:
    def test_throughput_result_fields(self, flagship):
        assert isinstance(flagship, ThroughputResult)
        assert flagship.streams == 8
        assert flagship.amortized_s == pytest.approx(
            flagship.total_s / 8)
        assert flagship.amortized_speedup == pytest.approx(
            flagship.serial_total_s / flagship.amortized_s)

    def test_amortized_speedup_needs_serial_reference(self, helr):
        result = engine_at(2).run_streams(helr, 2)
        assert result.amortized_speedup is None
        assert result.amortized_s > 0

    def test_prefetch_counters_populated(self, flagship):
        """8 aligned streams of a key-switch-heavy workload must ride
        shared prefetches; demand misses stay the exception."""
        assert flagship.prefetch_hits > 0
        assert flagship.prefetch_misses < flagship.prefetch_hits
        assert flagship.prefetch_bytes > 0

    def test_single_stream_valid(self, helr):
        result = engine_at(2).run_streams(helr, 1)
        assert result.streams == 1
        assert result.dependency_violations == 0
        assert result.amortized_s == result.total_s

    def test_run_multi_distinct_traces(self, helr):
        result = engine_at(2).run_multi([small_trace(), small_trace()])
        assert result.streams == 2
        assert result.dependency_violations == 0


class TestDeterminism:
    """Same trace + same engine parameters => identical timeline, on
    every run — the schedule reproducibility regression."""

    def _timeline(self, clusters=2, streams=4):
        engine = ScheduledEngine(
            FAST_CONFIG.with_(name=f"FAST-{clusters}C",
                              clusters=clusters))
        graph = replicate_graph(
            engine.lower_for_streams(helr_trace(batch=256)), streams)
        return engine.throughput_scheduler.run(graph)

    def test_identical_timelines_run_over_run(self):
        first, second = self._timeline(), self._timeline()
        assert first.order == second.order
        assert first.total_s == second.total_s
        for nid, timing in first.timings.items():
            other = second.timings[nid]
            assert (timing.cluster, timing.start_s, timing.end_s) == \
                (other.cluster, other.start_s, other.end_s), nid

    def test_latency_mode_deterministic_too(self):
        engine = ScheduledEngine(
            FAST_CONFIG.with_(name="FAST-4C", clusters=4))
        graph = engine.lower(helr_trace(batch=256))
        first = engine.scheduler.run(graph)
        second = engine.scheduler.run(graph)
        assert first.order == second.order
        assert first.total_s == second.total_s

    def test_pick_cluster_breaks_ties_to_lowest_index(self):
        """Equal free times must select the lowest cluster index,
        never an iteration incidental."""
        assert ClusterScheduler._pick_cluster([1.0, 1.0, 1.0], 2.0) == 0
        assert ClusterScheduler._pick_cluster([0.5, 0.5], 0.0) == 0

    def test_pick_cluster_prefers_latest_feasible(self):
        """Best-fit: the latest pipeline still free by the release
        time wastes the least idle; ties still break low."""
        assert ClusterScheduler._pick_cluster([0.0, 2.0, 2.0], 3.0) == 1
        assert ClusterScheduler._pick_cluster([4.0, 3.0, 3.0], 1.0) == 1


class TestParameterValidation:
    def test_unknown_mode_rejected(self):
        from repro.ckks.params import SET_I
        with pytest.raises(ValueError, match="unknown scheduler mode"):
            ClusterScheduler(FAST_CONFIG, SET_I, mode="bogus")

    def test_nonpositive_depth_rejected(self):
        from repro.ckks.params import SET_I
        with pytest.raises(ValueError, match="pipeline_depth"):
            ClusterScheduler(FAST_CONFIG, SET_I, mode="throughput",
                             pipeline_depth=0)

    def test_depth_plumbs_through_engine(self):
        engine = ScheduledEngine(FAST_CONFIG, pipeline_depth=5,
                                 prefetch_slots=3)
        assert engine.throughput_scheduler.pipeline_depth == 5
        assert engine.throughput_scheduler.prefetch_slots == 3
        assert engine.scheduler.pipeline_depth == \
            DEFAULT_PIPELINE_DEPTH


class TestObservability:
    def test_tracer_counts_prefetch_and_steals(self):
        tracer = obs.configure(enabled=True, reset=True)
        try:
            engine = ScheduledEngine(
                FAST_CONFIG.with_(name="FAST-2C", clusters=2))
            result = engine.run_streams(helr_trace(batch=256), 4)
            assert tracer.counter_value("hemera.prefetch.hit") == \
                result.prefetch_hits
            assert tracer.counter_value("hemera.prefetch.miss") == \
                result.prefetch_misses
            assert tracer.counter_value("sched.stolen_ops") == \
                result.stolen_ops
        finally:
            obs.configure(enabled=False, reset=True)


class TestBenchSection:
    @pytest.fixture(scope="class")
    def section(self):
        from repro.bench.sched import run_throughput
        return run_throughput(quick=True)

    def test_quick_grid_keeps_corners(self, section):
        points = {(p["clusters"], p["streams"])
                  for p in section["points"]}
        assert points == {(1, 1), (1, 8), (4, 1), (4, 8)}

    def test_section_passes_its_own_gate(self, section):
        from repro.bench.sched import validate_throughput
        assert validate_throughput(section) == []

    def test_grid_view_shape(self, section):
        from repro.bench.sched import throughput_grid
        grid = throughput_grid(section)
        assert set(grid) == {1, 4}
        assert set(grid[4]) == {1, 8}
        assert grid[4][8] >= 6.0

    def test_gate_rejects_missing_flagship_point(self, section):
        from repro.bench.sched import validate_throughput
        pruned = dict(section)
        pruned["points"] = [p for p in section["points"]
                            if (p["clusters"], p["streams"]) != (4, 8)]
        problems = validate_throughput(pruned)
        assert any("lacks the gated" in p for p in problems)

    def test_gate_rejects_slow_flagship(self, section):
        from repro.bench.sched import validate_throughput
        doctored = dict(section)
        doctored["points"] = [
            {**p, "amortized_speedup": 1.0}
            if (p["clusters"], p["streams"]) == (4, 8) else p
            for p in section["points"]]
        problems = validate_throughput(doctored)
        assert any("below" in p for p in problems)

    def test_gate_rejects_non_bit_exact_executor(self, section):
        from repro.bench.sched import validate_throughput
        doctored = dict(section)
        doctored["executor"] = {**section["executor"],
                                "bit_exact": False}
        problems = validate_throughput(doctored)
        assert any("bit-exact" in p for p in problems)


class TestScalingHelper:
    def test_throughput_scaling_on_small_trace(self):
        grid = throughput_scaling(small_trace(), cluster_counts=(1, 2),
                                  stream_counts=(1, 2))
        points = {(p["clusters"], p["streams"]): p
                  for p in grid["points"]}
        assert set(points) == {(1, 1), (1, 2), (2, 1), (2, 2)}
        assert grid["serial_s"] > 0
        for point in points.values():
            assert point["dependency_violations"] == 0
            assert point["amortized_s"] == pytest.approx(
                point["sim_s"] / point["streams"])


class TestCli:
    def test_sched_streams_cli(self, capsys):
        from repro.__main__ import main
        code = main(["sched", "--workload", "helr256",
                     "--clusters", "2", "--streams", "2",
                     "--pipeline-depth", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 cluster(s) x 2 streams" in out
        assert "amortized" in out
        assert "prefetch:" in out
