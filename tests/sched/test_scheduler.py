"""Scheduler correctness: op preservation, ordering, serial parity."""

import pytest

from repro.hw.config import FAST_CONFIG
from repro.sched import ScheduledEngine, serial_reference
from repro.workloads import bootstrap_trace, helr_trace


def engine_at(clusters: int) -> ScheduledEngine:
    config = FAST_CONFIG.with_(name=f"FAST-{clusters}C",
                               clusters=clusters)
    return ScheduledEngine(config)


@pytest.fixture(scope="module")
def helr():
    return helr_trace(batch=256)


@pytest.fixture(scope="module")
def boot():
    return bootstrap_trace()


@pytest.fixture(scope="module")
def helr_4c(helr):
    return engine_at(4).run(helr)


class TestOpPreservation:
    """The schedule executes exactly the serial engine's op set.

    The comparison runs the serial engine at the *same* design point
    (Aether's decisions depend on the chip's aggregate rate, so the
    1-cluster reference would legitimately lower differently); the
    scheduled path reuses that engine's lowering, so every op count
    and every modop must match exactly.
    """

    @pytest.fixture(scope="class")
    def serial_same_config(self, helr):
        from repro.sim.engine import Engine
        return Engine(FAST_CONFIG.with_(name="FAST-4C")).run(helr)

    def test_counts_match_serial(self, helr_4c, serial_same_config):
        serial = serial_same_config
        assert helr_4c.num_ops == serial.num_ops
        assert helr_4c.num_key_switches == serial.num_key_switches
        assert dict(helr_4c.method_ops) == dict(serial.method_ops)

    def test_kernel_work_matches_serial(self, helr_4c,
                                        serial_same_config):
        serial = serial_same_config
        assert set(helr_4c.kernel_modops) == set(serial.kernel_modops)
        for kernel, modops in serial.kernel_modops.items():
            assert helr_4c.kernel_modops[kernel] == \
                pytest.approx(modops), kernel

    def test_every_node_dispatched_once(self, helr):
        engine = engine_at(4)
        graph = engine.lower(helr)
        timeline = engine.scheduler.run(graph)
        assert sorted(timeline.order) == list(range(len(graph)))


class TestOrdering:
    """Dependent ops never reorder, at any cluster count."""

    @pytest.mark.parametrize("clusters", [1, 2, 4, 8])
    def test_no_dependency_violations(self, helr, clusters):
        engine = engine_at(clusters)
        graph = engine.lower(helr)
        timeline = engine.scheduler.run(graph)
        assert timeline.violations() == []

    def test_producers_clear_first_stage_before_consumers(self, helr):
        engine = engine_at(4)
        graph = engine.lower(helr)
        timeline = engine.scheduler.run(graph)
        for node in graph.nodes:
            timing = timeline.timings[node.node_id]
            for pred in node.preds:
                producer = timeline.timings[pred]
                assert timing.start_s >= \
                    producer.first_stage_end_s - 1e-12

    def test_same_cluster_ops_pipeline_in_dispatch_order(self, helr):
        engine = engine_at(4)
        timeline = engine.scheduler.run(engine.lower(helr))
        last_first_stage = {}
        for nid in timeline.order:
            timing = timeline.timings[nid]
            prev = last_first_stage.get(timing.cluster)
            if prev is not None:
                assert timing.start_s >= prev - 1e-12
            last_first_stage[timing.cluster] = timing.first_stage_end_s


class TestSerialParity:
    """One cluster reproduces the serial engine within 1%."""

    @pytest.mark.parametrize("trace_fixture", ["helr", "boot"])
    def test_one_cluster_matches_serial(self, trace_fixture, request):
        trace = request.getfixturevalue(trace_fixture)
        serial = serial_reference(FAST_CONFIG).run(trace)
        result = engine_at(1).run(trace)
        assert result.total_s == pytest.approx(serial.total_s, rel=0.01)


class TestScaling:
    """The acceptance bar: >= 2x at 4 clusters on both workloads."""

    @pytest.mark.parametrize("trace_fixture", ["helr", "boot"])
    def test_four_clusters_at_least_2x(self, trace_fixture, request):
        trace = request.getfixturevalue(trace_fixture)
        serial = serial_reference(FAST_CONFIG).run(trace)
        result = engine_at(4).run(trace)
        assert serial.total_s / result.total_s >= 2.0

    def test_more_clusters_never_slower(self, helr):
        totals = [engine_at(c).run(helr).total_s for c in (1, 2, 4, 8)]
        assert totals == sorted(totals, reverse=True)

    def test_occupancy_and_stalls_reported(self, helr_4c):
        assert len(helr_4c.per_cluster) == 4
        assert all(0.0 <= c.occupancy <= 1.0
                   for c in helr_4c.per_cluster)
        assert set(helr_4c.stalls) == {"dependency_s", "evk_s",
                                       "structural_s"}
        assert all(v >= 0.0 for v in helr_4c.stalls.values())

    def test_speedup_property(self, helr, helr_4c):
        assert helr_4c.speedup is None  # no reference attached yet
        serial = serial_reference(FAST_CONFIG).run(helr)
        helr_4c.serial_total_s = serial.total_s
        assert helr_4c.speedup == pytest.approx(
            serial.total_s / helr_4c.total_s)


class TestBenchGate:
    def test_validate_sched_passes_on_real_section(self):
        from repro.bench.sched import run_sched, validate_sched
        section = run_sched(clusters=(1, 4))
        assert validate_sched(section) == []

    def test_validate_sched_flags_doctored_section(self):
        from repro.bench.sched import validate_sched
        section = {
            "workloads": {"X": {"points": [
                {"clusters": 4, "speedup": 1.2,
                 "dependency_violations": 0},
                {"clusters": 1, "speedup": 1.5,
                 "dependency_violations": 2},
            ]}},
            "executor": {"bit_exact": False},
        }
        violations = validate_sched(section)
        assert any("below" in v for v in violations)
        assert any("dependency violations" in v for v in violations)
        assert any("deviates" in v for v in violations)
        assert any("bit-exact" in v for v in violations)
