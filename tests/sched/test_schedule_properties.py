"""Property-based scheduler invariants over random dataflow DAGs.

Hypothesis generates random-but-valid operation traces (varying chain
widths, levels, hoist-group shapes and stream counts), lowers them
through the real Aether pipeline and schedules them in both modes.
Four invariants must hold for *every* generated schedule:

* op-set preservation — every graph node is dispatched exactly once;
* per-stream program order — each (stream, ciphertext) chain starts
  in trace order;
* zero dependency ``violations()`` — no node starts before its
  producers allow;
* makespan >= the pipelined critical path — the scheduler's own lower
  bound on any legal schedule of the graph.
"""

import functools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.optrace import HROT, TraceBuilder
from repro.hw.config import FAST_CONFIG
from repro.sched import ScheduledEngine, replicate_graph

# Each example lowers and schedules a real trace (a few ms); keep the
# example count CI-sized and the deadline off (first-call warmup).
PROPERTY_SETTINGS = settings(max_examples=40, deadline=None)

CLUSTER_COUNTS = st.sampled_from([1, 2, 4])
STREAM_COUNTS = st.sampled_from([1, 2, 3])


@functools.lru_cache(maxsize=None)
def engine_at(clusters: int) -> ScheduledEngine:
    config = FAST_CONFIG.with_(name=f"FAST-{clusters}C",
                               clusters=clusters)
    return ScheduledEngine(config)


@st.composite
def traces(draw):
    """A random valid trace: several ciphertext chains of mixed op
    kinds, monotone levels, and optional hoisted rotation groups."""
    tb = TraceBuilder("property-trace")
    num_chains = draw(st.integers(min_value=1, max_value=4))
    for _ in range(num_chains):
        ct = tb.fresh_ct()
        level = draw(st.integers(min_value=4, max_value=12))
        for _ in range(draw(st.integers(min_value=1, max_value=5))):
            kind = draw(st.sampled_from(
                ["hmult", "pmult", "rescale", "hrot", "hoisted"]))
            if kind == "hmult":
                tb.hmult(ct, level)
            elif kind == "pmult":
                tb.pmult(ct, level)
            elif kind == "rescale":
                tb.rescale(ct, level)
                level = max(1, level - 1)
            elif kind == "hrot":
                tb.hrot(ct, level,
                        draw(st.integers(min_value=1, max_value=64)))
            else:
                amounts = draw(st.lists(
                    st.integers(min_value=1, max_value=128),
                    min_size=2, max_size=4, unique=True))
                tb.rotations(ct, level, amounts, hoisted=True)
    return tb.build().check()


def schedule(trace, clusters: int, streams: int):
    """Lower + schedule one generated trace; returns (graph, timeline,
    scheduler)."""
    engine = engine_at(clusters)
    if streams > 1:
        graph = replicate_graph(engine.lower_for_streams(trace),
                                streams)
        return graph, engine.throughput_scheduler.run(graph), \
            engine.throughput_scheduler
    graph = engine.lower(trace)
    return graph, engine.scheduler.run(graph), engine.scheduler


class TestOpSetPreservation:
    @PROPERTY_SETTINGS
    @given(trace=traces(), clusters=CLUSTER_COUNTS,
           streams=STREAM_COUNTS)
    def test_every_node_dispatched_exactly_once(self, trace, clusters,
                                                streams):
        graph, timeline, _ = schedule(trace, clusters, streams)
        node_ids = set(range(len(graph.nodes)))
        assert set(timeline.timings) == node_ids
        assert sorted(timeline.order) == sorted(node_ids)

    @PROPERTY_SETTINGS
    @given(trace=traces(), clusters=CLUSTER_COUNTS,
           streams=STREAM_COUNTS)
    def test_trace_ops_covered(self, trace, clusters, streams):
        """Node indices partition each stream's trace: no op dropped,
        none duplicated."""
        graph, _, _ = schedule(trace, clusters, streams)
        per_stream: dict = {}
        for node in graph.nodes:
            per_stream.setdefault(node.stream, []).extend(node.indices)
        assert len(per_stream) == streams
        for indices in per_stream.values():
            assert sorted(indices) == list(range(len(trace)))


class TestProgramOrder:
    @PROPERTY_SETTINGS
    @given(trace=traces(), clusters=CLUSTER_COUNTS,
           streams=STREAM_COUNTS)
    def test_per_stream_chains_start_in_order(self, trace, clusters,
                                              streams):
        graph, timeline, _ = schedule(trace, clusters, streams)
        chains: dict = {}
        for node in graph.nodes:
            chains.setdefault((node.stream, node.ct_id),
                              []).append(node.node_id)
        for members in chains.values():
            starts = [timeline.timings[nid].start_s
                      for nid in sorted(members)]
            assert all(a <= b + 1e-12
                       for a, b in zip(starts, starts[1:])), starts

    @PROPERTY_SETTINGS
    @given(trace=traces(), clusters=CLUSTER_COUNTS,
           streams=STREAM_COUNTS)
    def test_consumers_wait_for_producers(self, trace, clusters,
                                          streams):
        """Explicit edge check, independent of ``violations()``: every
        consumer starts no earlier than each producer's first-stage
        completion (limb-level forwarding)."""
        graph, timeline, scheduler = schedule(trace, clusters, streams)
        for node in graph.nodes:
            start = timeline.timings[node.node_id].start_s
            for pred in node.preds:
                pred_timing = timeline.timings[pred]
                first_stage = scheduler.estimate_first_stage_s(
                    graph.nodes[pred])
                assert start + 1e-12 >= \
                    pred_timing.start_s + first_stage


class TestDependencySafety:
    @PROPERTY_SETTINGS
    @given(trace=traces(), clusters=CLUSTER_COUNTS,
           streams=STREAM_COUNTS)
    def test_zero_violations(self, trace, clusters, streams):
        _, timeline, _ = schedule(trace, clusters, streams)
        assert timeline.violations() == []


class TestMakespanBound:
    @PROPERTY_SETTINGS
    @given(trace=traces(), clusters=CLUSTER_COUNTS,
           streams=STREAM_COUNTS)
    def test_makespan_at_least_critical_path(self, trace, clusters,
                                             streams):
        graph, timeline, scheduler = schedule(trace, clusters, streams)
        bound = scheduler.pipelined_critical_path_s(graph)
        assert timeline.total_s + 1e-12 >= bound

    @PROPERTY_SETTINGS
    @given(trace=traces(), clusters=CLUSTER_COUNTS)
    def test_throughput_single_stream_matches_bound_direction(
            self, trace, clusters):
        """The bound also holds for a 1-stream throughput schedule
        (backfilling may beat latency mode but never the DAG)."""
        engine = engine_at(clusters)
        graph = replicate_graph(engine.lower_for_streams(trace), 1)
        timeline = engine.throughput_scheduler.run(graph)
        bound = engine.throughput_scheduler.pipelined_critical_path_s(
            graph)
        assert timeline.total_s + 1e-12 >= bound


class TestModeEquivalence:
    @PROPERTY_SETTINGS
    @given(trace=traces(), clusters=CLUSTER_COUNTS,
           streams=STREAM_COUNTS)
    def test_stream_copies_identical_work(self, trace, clusters,
                                          streams):
        """Replication must not alter any stream's op multiset."""
        graph, _, _ = schedule(trace, clusters, streams)
        kinds: dict = {}
        for node in graph.nodes:
            kinds.setdefault(node.stream, []).extend(
                op.kind for op in node.ops)
        reference = sorted(kinds[0])
        for stream, ops in kinds.items():
            assert sorted(ops) == reference, stream


class TestGeneratorSoundness:
    """The strategy itself must produce traces the validator accepts
    (otherwise the suite silently tests nothing interesting)."""

    @PROPERTY_SETTINGS
    @given(trace=traces())
    def test_generated_traces_validate(self, trace):
        assert trace.validate() == []
        assert len(trace) >= 1

    @PROPERTY_SETTINGS
    @given(trace=traces())
    def test_generated_hoist_groups_are_rotations(self, trace):
        for op in trace:
            if op.hoist_group is not None:
                assert op.kind == HROT


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
