"""The functional executor: bit-exactness proves dependency order."""

import numpy as np
import pytest

from repro.core.optrace import TraceBuilder
from repro.sched.executor import FunctionalExecutor, _apply_op
from repro.sched.graph import DataflowGraph
from repro.workloads import helr


@pytest.fixture(scope="module")
def executor():
    return FunctionalExecutor(ring_degree=64, num_limbs=2)


def small_trace():
    tb = TraceBuilder("small")
    for _ in range(3):
        ct = tb.fresh_ct()
        tb.hmult(ct, 5)
        tb.hrot(ct, 5, rotation=3)
        tb.rescale(ct, 5)
    return tb.build()


class TestDeterminism:
    def test_serial_runs_are_identical(self, executor):
        trace = small_trace()
        a, b = executor.run_serial(trace), executor.run_serial(trace)
        assert all(np.array_equal(a[ct], b[ct]) for ct in a)

    def test_transforms_are_order_sensitive(self, executor):
        """Swapping two dependent ops must change the bits — otherwise
        bit-equality would prove nothing about ordering."""
        trace = small_trace()
        state = executor.initial_state(trace)
        forward = state[0].copy()
        _apply_op(forward, 0, 0, True, executor._ctx)   # HMult
        _apply_op(forward, 1, 3, True, executor._ctx)   # HRot
        swapped = state[0].copy()
        _apply_op(swapped, 1, 3, True, executor._ctx)
        _apply_op(swapped, 0, 0, True, executor._ctx)
        assert not np.array_equal(forward, swapped)

    def test_ops_change_the_ciphertext(self, executor):
        trace = small_trace()
        before = executor.initial_state(trace)
        after = executor.run_serial(trace)
        assert all(not np.array_equal(before[ct], after[ct])
                   for ct in before)


class TestParallelBitExactness:
    def test_small_trace_bit_exact(self, executor):
        check = executor.verify(small_trace(), workers=2)
        assert check.bit_exact
        assert check.mismatched_cts == []
        assert check.num_cts == 3

    def test_helr_iteration_bit_exact(self, executor):
        trace = helr.helr_iteration()
        check = executor.verify(trace, workers=2)
        assert check.bit_exact
        assert check.num_ops == len(trace)

    def test_fused_graph_bit_exact(self, executor):
        """Hoist-fused nodes execute their members in trace order."""
        tb = TraceBuilder("fused")
        ct = tb.fresh_ct()
        tb.rotations(ct, 5, [1, 2, 4], hoisted=True)
        tb.hmult(ct, 5)
        trace = tb.build()
        graph = DataflowGraph.from_trace(trace)
        assert len(graph) == 2
        check = executor.verify(trace, graph=graph, workers=2)
        assert check.bit_exact

    def test_inline_fallback_matches_serial(self, executor):
        trace = small_trace()
        graph = DataflowGraph.from_trace(trace)
        serial = executor.run_serial(trace)
        inline = executor._run_inline(trace, graph)
        assert all(np.array_equal(serial[ct], inline[ct])
                   for ct in serial)
