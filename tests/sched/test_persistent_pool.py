"""The resident fork pool: reuse across runs, clean shutdown."""

import numpy as np
import pytest

from repro.core.optrace import TraceBuilder
from repro.sched.executor import FunctionalExecutor


def small_trace():
    tb = TraceBuilder("small")
    for _ in range(2):
        ct = tb.fresh_ct()
        tb.hmult(ct, 5)
        tb.rescale(ct, 5)
    return tb.build()


@pytest.fixture()
def executor():
    ex = FunctionalExecutor(ring_degree=32, num_limbs=2,
                            persistent=True)
    yield ex
    ex.close()


class TestPoolLifecycle:
    def test_ensure_pool_reuses_resident_pool(self, executor):
        try:
            first = executor.ensure_pool(2)
        except OSError:
            pytest.skip("fork unavailable in this sandbox")
        assert executor.ensure_pool(2) is first
        assert executor.ensure_pool(1) is first   # smaller fits

    def test_ensure_pool_grows_by_recreation(self, executor):
        try:
            first = executor.ensure_pool(1)
        except OSError:
            pytest.skip("fork unavailable in this sandbox")
        grown = executor.ensure_pool(2)
        assert grown is not first

    def test_close_is_idempotent_and_recoverable(self, executor):
        try:
            executor.ensure_pool(1)
        except OSError:
            pytest.skip("fork unavailable in this sandbox")
        executor.close()
        executor.close()
        assert executor.ensure_pool(1) is not None

    def test_context_manager_shuts_down(self):
        with FunctionalExecutor(ring_degree=32, num_limbs=2,
                                persistent=True) as ex:
            trace = small_trace()
            state, _ = ex.run_parallel(trace, workers=2)
            assert state
        assert ex._pool is None


class TestPersistentRuns:
    def test_persistent_run_matches_serial(self, executor):
        trace = small_trace()
        serial = executor.run_serial(trace)
        state, parallel = executor.run_parallel(trace, workers=2)
        for ct in serial:
            assert np.array_equal(serial[ct], state[ct]), (ct, parallel)

    def test_runs_share_the_pool(self, executor):
        trace = small_trace()
        _, first_parallel = executor.run_parallel(trace, workers=2)
        if not first_parallel:
            pytest.skip("fork unavailable in this sandbox")
        pool = executor._pool
        assert pool is not None
        executor.run_parallel(trace, workers=2)
        assert executor._pool is pool

    def test_non_persistent_leaves_no_resident_pool(self):
        ex = FunctionalExecutor(ring_degree=32, num_limbs=2)
        ex.run_parallel(small_trace(), workers=2)
        assert ex._pool is None
