"""Dataflow-graph lowering: def-use chains, fusion, validation."""

import pytest

from repro.core import optrace
from repro.core.optrace import FheOp, OpTrace, TraceBuilder
from repro.sched.graph import DataflowGraph
from repro.workloads import bootstrap_trace, helr_trace


def chain_trace():
    """One ciphertext, four dependent ops."""
    tb = TraceBuilder("chain")
    ct = tb.fresh_ct()
    tb.hmult(ct, 5)
    tb.rescale(ct, 5)
    tb.pmult(ct, 4)
    tb.rescale(ct, 4)
    return tb.build()


def parallel_trace(chains: int = 3):
    """Independent per-ciphertext chains (no cross edges)."""
    tb = TraceBuilder("par")
    for _ in range(chains):
        ct = tb.fresh_ct()
        tb.hmult(ct, 5)
        tb.rescale(ct, 5)
    return tb.build()


class TestLowering:
    def test_chain_is_a_path(self):
        graph = DataflowGraph.from_trace(chain_trace())
        assert len(graph) == 4
        assert graph.num_edges == 3
        for node in graph.nodes[1:]:
            assert node.preds == [node.node_id - 1]

    def test_independent_chains_have_no_cross_edges(self):
        graph = DataflowGraph.from_trace(parallel_trace(3))
        assert len(graph.sources()) == 3
        assert graph.num_edges == 3  # one edge inside each chain

    def test_hoist_group_fuses_into_one_node(self):
        tb = TraceBuilder("h")
        ct = tb.fresh_ct()
        tb.rotations(ct, 5, [1, 2, 4], hoisted=True)
        tb.hmult(ct, 5)
        graph = DataflowGraph.from_trace(tb.build())
        assert len(graph) == 2
        assert len(graph.nodes[0].ops) == 3
        assert graph.nodes[1].preds == [0]

    def test_unhoisted_rotations_stay_separate(self):
        tb = TraceBuilder("u")
        ct = tb.fresh_ct()
        tb.rotations(ct, 5, [1, 2, 4], hoisted=False)
        graph = DataflowGraph.from_trace(tb.build())
        assert len(graph) == 3

    def test_partition_must_cover_trace(self):
        with pytest.raises(ValueError, match="does not cover"):
            DataflowGraph.from_trace(chain_trace(),
                                     partition=[(0,), (1,), (2,)])

    def test_partition_must_not_overlap(self):
        with pytest.raises(ValueError, match="two nodes"):
            DataflowGraph.from_trace(
                chain_trace(), partition=[(0, 1), (1, 2), (3,)])


class TestValidation:
    def test_level_rise_without_modraise_rejected(self):
        trace = OpTrace([FheOp(optrace.HMULT, 3, ct_id=0),
                         FheOp(optrace.HMULT, 7, ct_id=0)])
        with pytest.raises(ValueError):
            DataflowGraph.from_trace(trace)

    def test_modraise_level_rise_allowed(self):
        trace = OpTrace([FheOp(optrace.RESCALE, 0, ct_id=0),
                         FheOp(optrace.MOD_RAISE, 14, ct_id=0)])
        graph = DataflowGraph.from_trace(trace)
        assert graph.validate() == []

    def test_topological_order_is_complete_and_sorted(self):
        graph = DataflowGraph.from_trace(helr_trace(batch=256))
        order = graph.topological_order()
        assert sorted(order) == list(range(len(graph)))
        position = {nid: i for i, nid in enumerate(order)}
        for node in graph.nodes:
            for pred in node.preds:
                assert position[pred] < position[node.node_id]


class TestQueries:
    def test_critical_path_includes_own_weight(self):
        graph = DataflowGraph.from_trace(chain_trace())
        lengths = graph.critical_path(lambda n: 1.0)
        assert lengths == {0: 4.0, 1: 3.0, 2: 2.0, 3: 1.0}

    def test_critical_path_takes_longest_branch(self):
        # ct0: three chained ops; ct1: one op.  Each source's length
        # is its own chain's depth.
        trace = OpTrace([FheOp(optrace.HMULT, 5, ct_id=0),
                         FheOp(optrace.RESCALE, 5, ct_id=0),
                         FheOp(optrace.HADD, 4, ct_id=0),
                         FheOp(optrace.HADD, 5, ct_id=1)])
        graph = DataflowGraph.from_trace(trace)
        lengths = graph.critical_path(lambda n: 1.0)
        assert lengths[0] == 3.0 and lengths[3] == 1.0

    def test_stats_shape(self):
        graph = DataflowGraph.from_trace(bootstrap_trace())
        stats = graph.stats()
        assert stats["nodes"] > 100
        assert stats["edges"] >= stats["nodes"] - stats["ciphertext_chains"]
        assert stats["depth"] >= 1
        assert stats["avg_parallelism"] > 1.0

    def test_from_schedules_covers_trace(self):
        from repro.sim.engine import Engine
        trace = helr_trace(batch=256)
        engine = Engine()
        from repro.sim.kernels import lower_trace
        schedules = lower_trace(trace, engine.aether,
                                engine.make_policy(trace))
        graph = DataflowGraph.from_schedules(trace, schedules)
        covered = sorted(i for n in graph.nodes for i in n.indices)
        assert covered == list(range(len(trace)))
        assert all(n.schedule is not None for n in graph.nodes)
