"""Fuzzing the OpTrace -> DataflowGraph lowering with malformed input.

Every malformed trace must be *rejected with a named validation
error* — :class:`TraceValidationError`, :class:`GraphValidationError`
or :class:`StreamMergeError`, all ``ValueError`` subclasses — never
silently lowered and never crashed with an anonymous exception.  The
hypothesis section corrupts random valid traces and asserts the
lowering either succeeds or raises exactly one of the named errors.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.optrace import (HMULT, HROT, MOD_RAISE, PMULT, RESCALE,
                                FheOp, OpTrace, TraceBuilder,
                                TraceValidationError)
from repro.sched import (DataflowGraph, GraphValidationError,
                         StreamMergeError, merge_streams, replicate)

NAMED_ERRORS = (TraceValidationError, GraphValidationError,
                StreamMergeError)


def valid_trace() -> OpTrace:
    tb = TraceBuilder("fuzz-base")
    for _ in range(2):
        ct = tb.fresh_ct()
        tb.hmult(ct, 6)
        tb.rotations(ct, 6, [1, 2], hoisted=True)
        tb.rescale(ct, 6)
    return tb.build().check()


class TestMalformedOps:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown op kind"):
            FheOp(kind="HBogus", level=3)

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FheOp(kind=HMULT, level=-1)

    def test_negative_ct_id_rejected(self):
        trace = OpTrace([FheOp(kind=HMULT, level=3, ct_id=-2)])
        with pytest.raises(TraceValidationError, match="negative ct_id"):
            trace.check()


class TestForwardReferences:
    def test_unknown_ct_read_before_allocation(self):
        """With declared ids, reading an undeclared ciphertext is a
        forward reference and must raise."""
        trace = OpTrace([FheOp(kind=HMULT, level=3, ct_id=7)],
                        declared_cts={0, 1})
        with pytest.raises(TraceValidationError,
                           match="read before any allocation"):
            trace.check()

    def test_declared_ids_accepted(self):
        trace = OpTrace([FheOp(kind=HMULT, level=3, ct_id=1)],
                        declared_cts={0, 1})
        assert trace.check() is trace

    def test_undeclared_traces_define_on_first_use(self):
        """Hand-assembled traces (declared_cts=None) keep the legacy
        first-use-defines behaviour."""
        trace = OpTrace([FheOp(kind=HMULT, level=3, ct_id=9)])
        assert trace.validate() == []


class TestLevelRegressions:
    def test_level_rise_without_modraise(self):
        trace = OpTrace([FheOp(kind=RESCALE, level=4, ct_id=0),
                         FheOp(kind=HMULT, level=6, ct_id=0)])
        with pytest.raises(TraceValidationError,
                           match="without ModRaise"):
            trace.check()

    def test_level_rise_with_modraise_allowed(self):
        trace = OpTrace([FheOp(kind=RESCALE, level=4, ct_id=0),
                         FheOp(kind=MOD_RAISE, level=12, ct_id=0),
                         FheOp(kind=HMULT, level=12, ct_id=0)])
        assert trace.validate() == []

    def test_rise_on_other_ciphertext_is_independent(self):
        """Level tracking is per ciphertext: another chain's higher
        level is not a regression."""
        trace = OpTrace([FheOp(kind=RESCALE, level=4, ct_id=0),
                         FheOp(kind=HMULT, level=9, ct_id=1)])
        assert trace.validate() == []


class TestHoistGroupShapes:
    def test_non_rotation_member(self):
        trace = OpTrace([
            FheOp(kind=HROT, level=5, ct_id=0, rotation=1,
                  hoist_group=0),
            FheOp(kind=HMULT, level=5, ct_id=0, hoist_group=0)])
        with pytest.raises(TraceValidationError,
                           match="non-rotation member"):
            trace.check()

    def test_mixed_ciphertexts(self):
        trace = OpTrace([
            FheOp(kind=HROT, level=5, ct_id=0, rotation=1,
                  hoist_group=0),
            FheOp(kind=HROT, level=5, ct_id=1, rotation=2,
                  hoist_group=0)])
        with pytest.raises(TraceValidationError,
                           match="several ciphertexts"):
            trace.check()

    def test_mixed_levels(self):
        trace = OpTrace([
            FheOp(kind=HROT, level=5, ct_id=0, rotation=1,
                  hoist_group=0),
            FheOp(kind=HROT, level=4, ct_id=0, rotation=2,
                  hoist_group=0)])
        with pytest.raises(TraceValidationError,
                           match="several levels"):
            trace.check()

    def test_interleaved_same_ct_op(self):
        """An op on the group's ciphertext inside the group's span
        would be reordered by fusing — rejected."""
        trace = OpTrace([
            FheOp(kind=HROT, level=5, ct_id=0, rotation=1,
                  hoist_group=0),
            FheOp(kind=PMULT, level=5, ct_id=0),
            FheOp(kind=HROT, level=5, ct_id=0, rotation=2,
                  hoist_group=0)])
        with pytest.raises(TraceValidationError,
                           match="interleaves the group"):
            trace.check()

    def test_interleaved_other_ct_op_allowed(self):
        trace = OpTrace([
            FheOp(kind=HROT, level=5, ct_id=0, rotation=1,
                  hoist_group=0),
            FheOp(kind=PMULT, level=7, ct_id=1),
            FheOp(kind=HROT, level=5, ct_id=0, rotation=2,
                  hoist_group=0)])
        assert trace.validate() == []


class TestGraphPartitions:
    def test_duplicate_write_rejected(self):
        """One trace index owned by two nodes = a duplicate write."""
        trace = valid_trace()
        cells = [(i,) for i in range(len(trace))]
        cells.append((0,))
        with pytest.raises(GraphValidationError,
                           match="duplicate write"):
            DataflowGraph.from_trace(trace, partition=cells)

    def test_uncovered_index_rejected(self):
        trace = valid_trace()
        cells = [(i,) for i in range(len(trace) - 1)]
        with pytest.raises(GraphValidationError,
                           match="does not cover"):
            DataflowGraph.from_trace(trace, partition=cells)

    def test_invalid_trace_rejected_before_lowering(self):
        trace = OpTrace([FheOp(kind=RESCALE, level=4, ct_id=0),
                         FheOp(kind=HMULT, level=6, ct_id=0)])
        with pytest.raises(TraceValidationError):
            DataflowGraph.from_trace(trace)


class TestCrossStreamCollisions:
    def test_collision_without_rebase(self):
        """Two streams sharing a ciphertext id must be rejected when
        re-basing is disabled — an aliased id would chain independent
        streams through a fabricated def-use edge."""
        trace = valid_trace()
        with pytest.raises(StreamMergeError,
                           match="cross-stream collision"):
            merge_streams([trace, trace], rebase=False)

    def test_disjoint_ids_merge_without_rebase(self):
        a = valid_trace()
        tb = TraceBuilder("disjoint")
        tb._next_ct = a._ct_stride()
        ct = tb.fresh_ct()
        tb.hmult(ct, 5)
        b = tb.build().check()
        bundle = merge_streams([a, b], rebase=False)
        assert bundle.merged.validate() == []

    def test_zero_streams_rejected(self):
        with pytest.raises(StreamMergeError, match="zero streams"):
            merge_streams([])

    def test_nonpositive_replication_rejected(self):
        with pytest.raises(StreamMergeError, match="positive"):
            replicate(valid_trace(), 0)

    def test_invalid_stream_rejected_at_merge(self):
        bad = OpTrace([FheOp(kind=RESCALE, level=4, ct_id=0),
                       FheOp(kind=HMULT, level=6, ct_id=0)])
        with pytest.raises(TraceValidationError):
            merge_streams([valid_trace(), bad])

    def test_named_errors_are_value_errors(self):
        """The contract fuzzers rely on: every rejection is a
        ``ValueError`` subclass with a distinct name."""
        for error in NAMED_ERRORS:
            assert issubclass(error, ValueError)
        assert len({e.__name__ for e in NAMED_ERRORS}) == 3


@st.composite
def corrupted_traces(draw):
    """A valid trace with one random corruption (possibly harmless)."""
    base = list(valid_trace())
    index = draw(st.integers(min_value=0, max_value=len(base) - 1))
    op = base[index]
    corruption = draw(st.sampled_from(
        ["raise_level", "alias_ct", "steal_group", "drop_op",
         "duplicate_op", "shuffle"]))
    if corruption == "raise_level":
        base[index] = op.with_(level=op.level + draw(
            st.integers(min_value=1, max_value=8)))
    elif corruption == "alias_ct":
        base[index] = op.with_(ct_id=draw(
            st.integers(min_value=0, max_value=3)))
    elif corruption == "steal_group":
        if op.kind in (HROT,):
            base[index] = op.with_(hoist_group=draw(
                st.integers(min_value=0, max_value=2)))
        else:
            base[index] = op.with_(hoist_group=0)
    elif corruption == "drop_op":
        del base[index]
    elif corruption == "duplicate_op":
        base.insert(index, op)
    else:
        order = draw(st.permutations(range(len(base))))
        base = [base[i] for i in order]
    return OpTrace(base, name="fuzz-corrupted")


class TestFuzzLowering:
    @settings(max_examples=200, deadline=None)
    @given(trace=corrupted_traces(), streams=st.integers(1, 3))
    def test_lowering_accepts_or_raises_named_error(self, trace,
                                                    streams):
        """The lowering pipeline never crashes anonymously: corrupted
        traces either still validate (harmless corruption) or raise
        one of the three named validation errors."""
        try:
            graph = DataflowGraph.from_trace(trace)
            bundle = replicate(trace, streams)
            merged = DataflowGraph.from_trace(bundle.merged)
        except NAMED_ERRORS:
            return
        assert graph.validate() == []
        assert merged.validate() == []
        assert len(merged.nodes) == streams * len(graph.nodes)

    @settings(max_examples=100, deadline=None)
    @given(trace=corrupted_traces())
    def test_validate_and_check_agree(self, trace):
        """``check()`` raises iff ``validate()`` reports violations."""
        problems = trace.validate()
        if problems:
            with pytest.raises(TraceValidationError):
                trace.check()
        else:
            assert trace.check() is trace
