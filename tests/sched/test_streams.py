"""Multi-stream front-end semantics: merge, replicate, stream tags."""

import pytest

from repro.core.optrace import TraceBuilder
from repro.sched import (DataflowGraph, MultiStreamTrace, merge_graphs,
                         merge_streams, replicate, replicate_graph)


def chain_trace(name: str = "chain", chains: int = 2) -> "OpTrace":
    tb = TraceBuilder(name)
    for _ in range(chains):
        ct = tb.fresh_ct()
        tb.hmult(ct, 7)
        tb.rotations(ct, 7, [1, 3], hoisted=True)
        tb.rescale(ct, 7)
    return tb.build().check()


@pytest.fixture(scope="module")
def trace():
    return chain_trace()


class TestMergeStreams:
    def test_merged_trace_validates(self, trace):
        bundle = merge_streams([trace] * 3)
        assert isinstance(bundle, MultiStreamTrace)
        assert bundle.merged.validate() == []
        assert len(bundle.merged) == 3 * len(trace)

    def test_ciphertext_ids_rebased_per_stream(self, trace):
        bundle = merge_streams([trace] * 3)
        stride = bundle.ct_stride
        assert stride == trace._ct_stride()
        for s in range(3):
            window = bundle.merged[s * len(trace):(s + 1) * len(trace)]
            assert all(s * stride <= op.ct_id < (s + 1) * stride
                       for op in window)

    def test_ct_id_round_trip(self, trace):
        bundle = merge_streams([trace] * 3)
        for op in bundle.merged:
            s = bundle.stream_of_ct(op.ct_id)
            local = bundle.local_ct(op.ct_id)
            assert 0 <= s < 3
            assert local in set(bundle.stream_cts(s))

    def test_hoist_groups_never_merge_across_streams(self, trace):
        bundle = merge_streams([trace] * 3)
        owner: dict = {}
        for s in range(3):
            window = bundle.merged[s * len(trace):(s + 1) * len(trace)]
            for op in window:
                if op.hoist_group is not None:
                    owner.setdefault(op.hoist_group, s)
                    assert owner[op.hoist_group] == s

    def test_streams_keep_local_ids(self, trace):
        """The per-stream traces inside the bundle are the originals
        (local ids), which the executor replays independently."""
        bundle = merge_streams([trace] * 2)
        for stream in bundle.streams:
            assert stream is trace

    def test_replicate_names_the_bundle(self, trace):
        bundle = replicate(trace, 4)
        assert bundle.num_streams == 4
        assert "x4streams" in bundle.name
        assert bundle.name == bundle.merged.name


class TestMergedGraphs:
    def test_replicate_graph_copies_nodes(self, trace):
        base = DataflowGraph.from_trace(trace)
        merged = replicate_graph(base, 3)
        assert len(merged.nodes) == 3 * len(base.nodes)
        assert merged.num_edges == 3 * base.num_edges

    def test_stream_tags_partition_nodes(self, trace):
        base = DataflowGraph.from_trace(trace)
        merged = replicate_graph(base, 3)
        for node in merged.nodes:
            assert node.stream == node.node_id // len(base.nodes)

    def test_no_cross_stream_edges(self, trace):
        base = DataflowGraph.from_trace(trace)
        merged = replicate_graph(base, 3)
        for node in merged.nodes:
            for other in list(node.preds) + list(node.succs):
                assert merged.node(other).stream == node.stream

    def test_stats_report_stream_count(self, trace):
        base = DataflowGraph.from_trace(trace)
        stats = replicate_graph(base, 3).stats()
        assert stats["streams"] == 3
        assert stats["nodes"] == 3 * len(base.nodes)
        assert base.stats()["streams"] == 1

    def test_schedules_shared_not_copied(self, trace):
        """Replication reuses the lowered schedules (read-only to the
        scheduler) instead of re-lowering per stream."""
        from repro.hw.config import FAST_CONFIG
        from repro.sched import ScheduledEngine
        engine = ScheduledEngine(FAST_CONFIG)
        base = engine.lower_for_streams(trace)
        merged = replicate_graph(base, 2)
        for node in merged.nodes:
            origin = base.nodes[node.node_id % len(base.nodes)]
            assert node.schedule is origin.schedule

    def test_merge_distinct_graphs(self, trace):
        other = chain_trace("other", chains=1)
        merged = merge_graphs([DataflowGraph.from_trace(trace),
                               DataflowGraph.from_trace(other)])
        streams = {node.stream for node in merged.nodes}
        assert streams == {0, 1}

    def test_replication_depth_unchanged(self, trace):
        """Independent copies add width, never depth."""
        base = DataflowGraph.from_trace(trace)
        merged = replicate_graph(base, 4)
        assert merged.stats()["depth"] == base.stats()["depth"]
