"""The residency contract, counter-asserted via FakeBackend.

Every plan moves its precomputed tables host->device once, at build;
once inputs are device-resident, the steady state of each hot path
performs **zero** implicit host<->device transfers.  Allocations
(``alloc``) are permitted — workspace pools and per-call output
tensors live on-device — but any non-zero ``h2d``/``d2h`` in a warmed
loop means a kernel is silently round-tripping through the host.
"""

import numpy as np
import pytest

import repro.backend as backend_mod
from repro.backend import FakeDeviceArray
from repro.ckks import modmath, primes, rns
from repro.ckks.ntt import get_batch_plan
from repro.ckks.rns import get_auto_plan, get_bconv_plan, get_plan

N = 64


def _prime(bits: int) -> int:
    return primes.ntt_primes(1, bits, N)[0]


def _dev(fake, q, seed=0):
    rng = np.random.default_rng(seed)
    return fake.from_host(rng.integers(0, q, size=N, dtype=np.uint64))


def _steady(fake, fn, warmup: int = 1):
    """Transfer counts of one call after ``warmup`` warm calls."""
    for _ in range(warmup):
        fn()
    fake.reset_counters()
    fn()
    return fake.transfer_counts()


class TestTableResidency:
    def test_scalar_ntt_tables_are_device_resident(self, fake_backend):
        plan = get_plan(N, _prime(36), backend=fake_backend)
        assert isinstance(plan._psi_rev, FakeDeviceArray)
        assert isinstance(plan._psi_inv_rev, FakeDeviceArray)
        assert isinstance(plan._psi_rev_shoup, FakeDeviceArray)

    def test_bconv_tables_are_device_resident(self, fake_backend):
        src = tuple(primes.ntt_primes(3, 36, N))
        dst = tuple(primes.ntt_primes(2, 28, N))
        plan = get_bconv_plan(src, dst, backend=fake_backend)
        assert isinstance(plan._block_stack, FakeDeviceArray)
        assert isinstance(plan._ew_w, FakeDeviceArray)

    def test_auto_plan_tables_are_device_resident(self, fake_backend):
        plan = get_auto_plan(N, 5, backend=fake_backend)
        assert isinstance(plan.eval_perm, FakeDeviceArray)
        assert isinstance(plan.coeff_dest, FakeDeviceArray)

    def test_kernel_outputs_are_device_resident(self, fake_backend):
        q = _prime(36)
        kernel = modmath.get_kernel(q, backend=fake_backend)
        a = kernel.asresidues(_dev(fake_backend, q, 1), copy=False)
        assert isinstance(kernel.mul(a, a), FakeDeviceArray)
        assert isinstance(kernel.zeros(N), FakeDeviceArray)


class TestSteadyStateZeroTransfers:
    @pytest.mark.parametrize("bits", [28, 36, 60])
    def test_modmul(self, fake_backend, bits):
        q = _prime(bits)
        kernel = modmath.get_kernel(q, backend=fake_backend)
        a = kernel.asresidues(_dev(fake_backend, q, 1), copy=False)
        b = kernel.asresidues(_dev(fake_backend, q, 2), copy=False)
        counts = _steady(fake_backend,
                         lambda: kernel.add(kernel.mul(a, b), b))
        assert counts["h2d"] == 0 and counts["d2h"] == 0, counts

    @pytest.mark.parametrize("bits", [28, 36, 60])
    def test_scalar_ntt_roundtrip(self, fake_backend, bits):
        q = _prime(bits)
        plan = get_plan(N, q, backend=fake_backend)
        a = _dev(fake_backend, q, 3)
        counts = _steady(fake_backend,
                         lambda: plan.inverse(plan.forward(a)))
        assert counts["h2d"] == 0 and counts["d2h"] == 0, counts

    def test_batch_ntt_roundtrip(self, fake_backend):
        moduli = tuple(_prime(b) for b in (28, 36, 60))
        plan = get_batch_plan(N, moduli, backend=fake_backend)
        limbs = [_dev(fake_backend, qi, 4 + i)
                 for i, qi in enumerate(moduli)]
        counts = _steady(fake_backend,
                         lambda: plan.inverse(plan.forward(limbs)))
        assert counts["h2d"] == 0 and counts["d2h"] == 0, counts

    def test_bconv_convert(self, fake_backend):
        src = tuple(primes.ntt_primes(3, 36, N))
        dst = tuple(primes.ntt_primes(2, 28, N))
        plan = get_bconv_plan(src, dst, backend=fake_backend)
        rows = [_dev(fake_backend, qi, 7 + i)
                for i, qi in enumerate(src)]
        counts = _steady(fake_backend, lambda: plan.convert(rows))
        assert counts["h2d"] == 0 and counts["d2h"] == 0, counts
        # the pooled workspace must also stop allocating once warm
        assert counts["alloc"] == 0, counts

    def test_auto_gather(self, fake_backend):
        q = _prime(36)
        plan = get_auto_plan(N, 5, backend=fake_backend)
        limb = _dev(fake_backend, q, 9)
        counts = _steady(fake_backend,
                         lambda: fake_backend.gather(limb,
                                                     plan.eval_perm))
        assert counts["h2d"] == 0 and counts["d2h"] == 0, counts

    def test_key_mult_accumulate(self, fake_backend):
        from repro.ckks import CkksContext, set_ii_mini
        from repro.ckks.keys import HYBRID
        from repro.ckks.keyswitch import hybrid as hy

        ctx = CkksContext(set_ii_mini(ring_degree=64, max_level=3),
                          seed=13)
        level = ctx.params.max_level
        key = ctx.evaluation_key(HYBRID, level, "mult")
        rng = np.random.default_rng(14)
        coeffs = [int(v) for v in rng.integers(-10**6, 10**6, size=64)]
        poly = rns.from_big_ints(coeffs, ctx.moduli_at(level), 64)
        digits = hy.hybrid_decompose(poly, key, ctx.params.alpha)
        plan = hy.get_key_mult_plan(key, backend=fake_backend)
        assert isinstance(plan._w, FakeDeviceArray)
        fdigits = [rns.RnsPoly(
            [fake_backend.from_host(np.asarray(l)) for l in d.limbs],
            d.moduli, d.form) for d in digits]
        counts = _steady(fake_backend,
                         lambda: plan.accumulate(plan.stack(fdigits)))
        assert counts["h2d"] == 0 and counts["d2h"] == 0, counts

    def test_serve_run_batch(self, fake_backend):
        from repro.serve.engine import ServeExecutor
        from repro.serve.jobs import get_shape

        trace = get_shape("helr-mini-step")
        ex = ServeExecutor(ring_degree=64, backend=fake_backend)
        seeds = [ex.request_seed(i) for i in range(3)]
        counts = _steady(fake_backend,
                         lambda: ex.run_batch(trace, seeds))
        # one upload per run: the request-seed vector itself
        assert counts["h2d"] == 1 and counts["d2h"] == 0, counts
