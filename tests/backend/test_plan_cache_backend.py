"""Plan caches are keyed by backend identity and still evict cleanly."""

import numpy as np
import pytest

import repro.backend as backend_mod
from repro.ckks import modmath, primes, rns
from repro.ckks.ntt import clear_batch_plan_cache, get_batch_plan
from repro.ckks.rns import (clear_bconv_plan_cache, clear_plan_cache,
                            get_auto_plan, get_bconv_plan, get_plan,
                            plan_cache_evictions)

N = 32


def _prime(bits: int = 28) -> int:
    return primes.ntt_primes(1, bits, N)[0]


class TestBackendKeying:
    def test_kernel_cache(self, fake_backend):
        q = _prime()
        kn = modmath.get_kernel(q)
        kf = modmath.get_kernel(q, backend=fake_backend)
        assert kn is not kf
        assert modmath.get_kernel(q) is kn
        assert modmath.get_kernel(q, backend=fake_backend) is kf
        assert modmath.get_kernel(q, backend="fake") is kf

    def test_ntt_plan_cache(self, fake_backend):
        q = _prime()
        pn = get_plan(N, q)
        pf = get_plan(N, q, backend=fake_backend)
        assert pn is not pf
        assert get_plan(N, q) is pn
        assert get_plan(N, q, backend="fake") is pf

    def test_batch_plan_cache(self, fake_backend):
        moduli = tuple(primes.ntt_primes(2, 28, N))
        pn = get_batch_plan(N, moduli)
        pf = get_batch_plan(N, moduli, backend=fake_backend)
        assert pn is not pf
        assert get_batch_plan(N, moduli) is pn

    def test_bconv_plan_cache(self, fake_backend):
        src = tuple(primes.ntt_primes(2, 28, N))
        dst = tuple(primes.ntt_primes(1, 26, N))
        pn = get_bconv_plan(src, dst)
        pf = get_bconv_plan(src, dst, backend=fake_backend)
        assert pn is not pf
        assert get_bconv_plan(src, dst) is pn

    def test_auto_plan_cache(self, fake_backend):
        pn = get_auto_plan(N, 5)
        pf = get_auto_plan(N, 5, backend=fake_backend)
        assert pn is not pf
        assert get_auto_plan(N, 5) is pn

    def test_default_backend_resolution_shares_entries(self):
        # None and the explicit default name hit the same cache slot.
        q = _prime()
        assert modmath.get_kernel(q) is \
            modmath.get_kernel(q, backend="numpy")
        backend_mod.select("fake")
        assert modmath.get_kernel(q) is \
            modmath.get_kernel(q, backend="fake")


class TestEvictionRegression:
    """Mirror of the dataflow zero-eviction gate, with a fake workload.

    Running a realistic working set twice — once per backend — must
    still fit the bounded caches: backend keying doubles entries for
    the bases actually exercised, and the maxsize headroom has to
    absorb that without thrash.
    """

    @pytest.fixture(autouse=True)
    def _fresh(self):
        clear_plan_cache()
        clear_batch_plan_cache()
        clear_bconv_plan_cache()
        yield
        clear_plan_cache()
        clear_batch_plan_cache()
        clear_bconv_plan_cache()

    def test_steady_state_two_backend_workload_has_zero_evictions(
            self, fake_backend):
        moduli = tuple(primes.ntt_primes(4, 28, N))
        rng = np.random.default_rng(3)
        rows = [rng.integers(0, q, size=N, dtype=np.uint64)
                for q in moduli]
        for backend in (None, fake_backend):
            for _ in range(3):
                plan = get_batch_plan(N, moduli, backend=backend)
                plan.inverse(plan.forward(list(rows)))
                conv = get_bconv_plan(moduli[2:], moduli[:2],
                                      backend=backend)
                conv.convert([rows[2], rows[3]])
                for q in moduli:
                    get_plan(N, q, backend=backend)
                get_auto_plan(N, 5, backend=backend)
        evictions = plan_cache_evictions()
        assert all(v == 0 for v in evictions.values()), evictions

    def test_eviction_still_bounded_with_backend_keys(self, fake_backend):
        from repro.ckks.rns import PLAN_CACHE_MAXSIZE, plan_cache_info

        half = PLAN_CACHE_MAXSIZE // 2 + 4
        for q in primes.ntt_primes(half, 18, N):
            get_plan(N, q)
            get_plan(N, q, backend=fake_backend)
        info = plan_cache_info()
        assert info.currsize <= PLAN_CACHE_MAXSIZE

    def test_rebuilt_fake_plan_still_bit_exact(self, fake_backend):
        from repro.ckks.rns import PLAN_CACHE_MAXSIZE

        q = _prime()
        a = np.random.default_rng(5).integers(0, q, size=N,
                                              dtype=np.uint64)
        reference = np.asarray(
            backend_mod.to_host(get_plan(N, q).forward(a)))
        for churn_q in primes.ntt_primes(PLAN_CACHE_MAXSIZE + 4, 18, N):
            get_plan(N, churn_q)
        rebuilt = get_plan(N, q, backend=fake_backend)
        np.testing.assert_array_equal(
            np.asarray(backend_mod.to_host(rebuilt.forward(a))),
            reference)
