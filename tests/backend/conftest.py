"""Shared hygiene for the backend suite.

Every test runs with a clean fake-device ledger and leaves the
process-default backend exactly as it found it — the suite runs inside
the same pytest session as the rest of tier 1, and a leaked
``select("fake")`` would silently re-route every later plan build.
"""

from __future__ import annotations

import pytest

import repro.backend as backend_mod


@pytest.fixture(autouse=True)
def _backend_hygiene():
    previous = backend_mod._default
    fake = backend_mod.get_backend("fake")
    fake.reset_counters()
    yield
    backend_mod._default = previous
    backend_mod._warned.clear()
    fake.reset_counters()


@pytest.fixture
def fake_backend():
    return backend_mod.get_backend("fake")


@pytest.fixture
def numpy_backend():
    return backend_mod.get_backend("numpy")
