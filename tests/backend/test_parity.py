"""Bit-exact parity: every hot kernel, numpy vs the selected backend.

The grid spans both uint64 width tiers — narrow (<= 31-bit, int64
residues) and wide (<= 62-bit, split-limb Barrett/Shoup) — at the
paper's word lengths.  The fake backend runs numpy's own arithmetic,
so any mismatch here is a residency/threading bug in the backend
plumbing, not a numerical one; the same suite re-runs against real
accelerators in ``test_optional_backends``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.backend as backend_mod
from repro.ckks import modmath, primes, rns
from repro.ckks.ntt import get_batch_plan
from repro.ckks.rns import get_auto_plan, get_bconv_plan, get_plan

N = 64

#: one prime per width tier actually used by the parameter sets:
#: 26/28 narrow, 31 the narrow/wide boundary, 36 Set-II's word, 60/62
#: the wide-path ceiling.
WIDTH_GRID = [26, 28, 31, 36, 60, 62]


def _prime(bits: int) -> int:
    return primes.ntt_primes(1, bits, N)[0]


def _host(array) -> np.ndarray:
    return np.asarray(backend_mod.to_host(array))


def _rand(q: int, size, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, q, size=size, dtype=np.uint64)


@pytest.fixture(params=WIDTH_GRID, ids=lambda b: f"{b}bit")
def q(request):
    return _prime(request.param)


class TestModmulParity:
    def test_elementwise_ops(self, q, fake_backend):
        kn = modmath.get_kernel(q)
        kf = modmath.get_kernel(q, backend=fake_backend)
        assert kn is not kf and kf.backend is fake_backend
        a, b = _rand(q, N, 1), _rand(q, N, 2)
        for op in ("mul", "add", "sub"):
            ref = getattr(kn, op)(kn.asresidues(a), kn.asresidues(b))
            got = getattr(kf, op)(kf.asresidues(a), kf.asresidues(b))
            np.testing.assert_array_equal(_host(got), _host(ref), op)

    def test_scalar_and_shoup_mul(self, q, fake_backend):
        kn = modmath.get_kernel(q)
        kf = modmath.get_kernel(q, backend=fake_backend)
        a = _rand(q, N, 3)
        w = int(_rand(q, 1, 4)[0]) or 1
        np.testing.assert_array_equal(
            _host(kf.mul_scalar(kf.asresidues(a), w)),
            _host(kn.mul_scalar(kn.asresidues(a), w)))
        if kn.dtype == np.uint64:
            pair = kn.shoup(w)
            np.testing.assert_array_equal(
                _host(kf.mul_shoup(kf.asresidues(a), *pair)),
                _host(kn.mul_shoup(kn.asresidues(a), *pair)))

    @given(values=st.lists(st.integers(0, (1 << 62) - 58),
                           min_size=1, max_size=16),
           bits=st.sampled_from(WIDTH_GRID))
    @settings(max_examples=40, deadline=None)
    def test_mulmod_matches_object_math(self, values, bits):
        q = _prime(bits)
        fake = backend_mod.get_backend("fake")
        a = np.array([v % q for v in values], dtype=np.uint64)
        b = np.array([(v * 3 + 1) % q for v in values], dtype=np.uint64)
        got = _host(fake.mulmod(a, b, q)).astype(object)
        expected = (a.astype(object) * b.astype(object)) % q
        np.testing.assert_array_equal(got, expected)


class TestNttParity:
    def test_scalar_plan_roundtrip(self, q, fake_backend):
        pn = get_plan(N, q)
        pf = get_plan(N, q, backend=fake_backend)
        a = _rand(q, N, 5)
        fwd_n, fwd_f = pn.forward(a), pf.forward(a)
        np.testing.assert_array_equal(_host(fwd_f), _host(fwd_n))
        np.testing.assert_array_equal(_host(pf.inverse(fwd_f)),
                                      _host(pn.inverse(fwd_n)))
        np.testing.assert_array_equal(_host(pf.inverse(fwd_f)), a)

    def test_batch_plan_roundtrip(self, fake_backend):
        moduli = tuple(_prime(b) for b in (28, 36, 60))
        pn = get_batch_plan(N, moduli)
        pf = get_batch_plan(N, moduli, backend=fake_backend)
        limbs = [_rand(qi, N, 6 + i) for i, qi in enumerate(moduli)]
        fwd_n = pn.forward(limbs)
        fwd_f = pf.forward(limbs)
        for gn, gf in zip(fwd_n, fwd_f):
            np.testing.assert_array_equal(_host(gf), _host(gn))
        for back, orig in zip(pf.inverse(fwd_f), limbs):
            np.testing.assert_array_equal(_host(back), orig)


class TestBConvParity:
    def test_convert_and_down_scale(self, fake_backend):
        src = tuple(primes.ntt_primes(3, 36, N))
        dst = tuple(primes.ntt_primes(2, 28, N))
        pn = get_bconv_plan(src, dst)
        pf = get_bconv_plan(src, dst, backend=fake_backend)
        assert pf.matrix_path == pn.matrix_path
        rows = [_rand(qi, N, 10 + i) for i, qi in enumerate(src)]
        for gn, gf in zip(pn.convert(rows), pf.convert(rows)):
            np.testing.assert_array_equal(_host(gf), _host(gn))


class TestKeyMultParity:
    def test_accumulate(self, fake_backend):
        from repro.ckks import CkksContext, set_ii_mini
        from repro.ckks.keys import HYBRID
        from repro.ckks.keyswitch import hybrid as hy

        ctx = CkksContext(set_ii_mini(ring_degree=64, max_level=3),
                          seed=11)
        level = ctx.params.max_level
        key = ctx.evaluation_key(HYBRID, level, "mult")
        rng = np.random.default_rng(12)
        coeffs = [int(v) for v in rng.integers(-10**6, 10**6, size=64)]
        poly = rns.from_big_ints(coeffs, ctx.moduli_at(level), 64)
        digits = hy.hybrid_decompose(poly, key, ctx.params.alpha)
        pn = hy.get_key_mult_plan(key)
        pf = hy.get_key_mult_plan(key, backend=fake_backend)
        assert pf is not pn and pf.tier == pn.tier
        ref = pn.accumulate(pn.stack(digits))
        got = pf.accumulate(pf.stack(digits))
        for gp, rp in zip(got, ref):
            for gl, rl in zip(gp.limbs, rp.limbs):
                np.testing.assert_array_equal(_host(gl), _host(rl))


class TestAutoPlanParity:
    def test_eval_gather(self, q, fake_backend):
        pn = get_auto_plan(N, 5)
        pf = get_auto_plan(N, 5, backend=fake_backend)
        assert pf is not pn
        limb = _rand(q, N, 20)
        np.testing.assert_array_equal(
            _host(fake_backend.gather(fake_backend.from_host(limb),
                                      pf.eval_perm)),
            limb[np.asarray(_host(pn.eval_perm))])

    def test_coeff_tables_match(self, fake_backend):
        pn = get_auto_plan(N, 7)
        pf = get_auto_plan(N, 7, backend=fake_backend)
        np.testing.assert_array_equal(_host(pf.coeff_dest),
                                      _host(pn.coeff_dest))
        np.testing.assert_array_equal(_host(pf.coeff_negate),
                                      _host(pn.coeff_negate))


class TestServeParity:
    def test_stacked_batch(self, fake_backend):
        from repro.serve.engine import ServeExecutor
        from repro.serve.jobs import get_shape

        trace = get_shape("helr-mini-step")
        ex_n = ServeExecutor(ring_degree=64)
        ex_f = ServeExecutor(ring_degree=64, backend=fake_backend)
        seeds = [ex_n.request_seed(i) for i in range(3)]
        sn = ex_n.run_batch(trace, seeds)
        sf = ex_f.run_batch(trace, seeds)
        for ct in sn:
            np.testing.assert_array_equal(_host(sf[ct]), _host(sn[ct]))
        for row in range(len(seeds)):
            assert ex_f.digest_row(sf, row) == ex_n.digest_row(sn, row)
