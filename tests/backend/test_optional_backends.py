"""Accelerator-backend suites: skip cleanly when the library is absent.

CI machines without a GPU still exercise the *negative* path (the
fallback assert lives in the CI workflow); these tests only run where
``cupy``/``torch`` import and a device is usable.
"""

import numpy as np
import pytest

import repro.backend as backend_mod
from repro.ckks import modmath, primes
from repro.ckks.rns import get_bconv_plan, get_plan

N = 64


def _backend_or_skip(name: str):
    pytest.importorskip(name)
    be = backend_mod.get_backend(name)
    if be.name != name:        # library imports but no usable device
        pytest.skip(f"{name} present but backend fell back to numpy")
    return be


def _parity_roundtrip(be):
    q = primes.ntt_primes(1, 36, N)[0]
    rng = np.random.default_rng(1)
    a = rng.integers(0, q, size=N, dtype=np.uint64)
    pn = get_plan(N, q)
    pb = get_plan(N, q, backend=be)
    np.testing.assert_array_equal(
        np.asarray(backend_mod.to_host(pb.forward(a))),
        np.asarray(backend_mod.to_host(pn.forward(a))))


class TestCupy:
    def test_ntt_parity(self):
        _parity_roundtrip(_backend_or_skip("cupy"))

    def test_full_datapath_flags(self):
        be = _backend_or_skip("cupy")
        assert be.supports_uint64 and be.numpy_dispatch

    def test_bconv_parity(self):
        be = _backend_or_skip("cupy")
        src = tuple(primes.ntt_primes(3, 36, N))
        dst = tuple(primes.ntt_primes(2, 28, N))
        rng = np.random.default_rng(2)
        rows = [rng.integers(0, q, size=N, dtype=np.uint64)
                for q in src]
        pn = get_bconv_plan(src, dst)
        pb = get_bconv_plan(src, dst, backend=be)
        for gn, gb in zip(pn.convert(rows), pb.convert(rows)):
            np.testing.assert_array_equal(
                np.asarray(backend_mod.to_host(gb)),
                np.asarray(backend_mod.to_host(gn)))


class TestTorch:
    def test_partial_capabilities_negotiate_to_numpy(self):
        be = _backend_or_skip("torch")
        # torch has no uint64 dtype: the wide datapath must downgrade.
        assert not be.supports_uint64
        assert backend_mod.kernel_backend(be,
                                          need_uint64=True).name == "numpy"

    def test_kernel_build_falls_back_cleanly(self):
        be = _backend_or_skip("torch")
        q = primes.ntt_primes(1, 36, N)[0]
        kernel = modmath.get_kernel(q, backend=be)
        assert kernel.backend.name == "numpy"
        rng = np.random.default_rng(3)
        a = rng.integers(0, q, size=N, dtype=np.uint64)
        out = kernel.mul(kernel.asresidues(a), kernel.asresidues(a))
        expected = (a.astype(object) * a.astype(object)) % q
        np.testing.assert_array_equal(
            np.asarray(out).astype(object), expected)

    def test_matmul_protocol(self):
        be = _backend_or_skip("torch")
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        b = np.arange(12, dtype=np.float64).reshape(3, 4)
        got = be.to_host(be.matmul(be.from_host(a), be.from_host(b)))
        np.testing.assert_allclose(got, a @ b)
