"""Selection, capability negotiation and the protocol surface."""

import numpy as np
import pytest

import repro.backend as backend_mod
from repro import obs
from repro.backend import ArrayBackend, FakeDeviceArray
from repro.backend.base import NumpyBackend


class TestSelection:
    def test_default_is_numpy(self):
        assert backend_mod.resolve(None).name == "numpy"

    def test_select_sets_process_default(self):
        backend_mod.select("fake")
        assert backend_mod.resolve(None).name == "fake"

    def test_backends_are_singletons(self):
        assert backend_mod.get_backend("fake") is \
            backend_mod.get_backend("fake")
        assert backend_mod.get_backend("numpy") is \
            backend_mod.get_backend("numpy")

    def test_resolve_accepts_name_instance_and_none(self):
        fake = backend_mod.get_backend("fake")
        assert backend_mod.resolve("fake") is fake
        assert backend_mod.resolve(fake) is fake
        assert backend_mod.resolve(None).name == "numpy"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            backend_mod.get_backend("tpu")

    def test_env_var_read_at_first_use(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fake")
        backend_mod._reset_for_tests()
        assert backend_mod.resolve(None).name == "fake"

    def test_auto_resolves_to_an_available_backend(self):
        assert backend_mod.get_backend("auto").name in \
            backend_mod.BACKEND_NAMES


class TestFallback:
    def test_unavailable_accelerator_falls_back_to_numpy(self):
        if "cupy" not in backend_mod._failures:
            backend_mod._instantiate("cupy")
        if "cupy" not in backend_mod._failures:
            pytest.skip("cupy actually available here")
        obs.configure(enabled=True, reset=True)
        try:
            with pytest.warns(RuntimeWarning, match="falling back"):
                backend_mod._warned.discard("cupy")
                be = backend_mod.get_backend("cupy")
            assert be.name == "numpy"
            counters = obs.snapshot(obs.get_tracer())["counters"]
            assert counters["backend.fallback"] >= 1
            assert counters["backend.fallback.unavailable"] >= 1
        finally:
            obs.configure(enabled=False, reset=True)

    def test_capability_negotiation_downgrades(self):
        class Partial(ArrayBackend):
            name = "partial"
            numpy_dispatch = True
            supports_uint64 = False
            exact_float64_matmul = False

        obs.configure(enabled=True, reset=True)
        try:
            be = backend_mod.kernel_backend(Partial(), need_uint64=True)
            assert be.name == "numpy"
            counters = obs.snapshot(obs.get_tracer())["counters"]
            assert counters["backend.fallback"] == 1
            assert counters["backend.fallback.capability"] == 1
            assert counters["backend.dispatch.numpy"] == 1
        finally:
            obs.configure(enabled=False, reset=True)

    def test_capable_backend_counts_dispatch(self):
        obs.configure(enabled=True, reset=True)
        try:
            be = backend_mod.kernel_backend("fake", need_uint64=True,
                                            need_matmul=True)
            assert be.name == "fake"
            counters = obs.snapshot(obs.get_tracer())["counters"]
            assert counters["backend.dispatch.fake"] == 1
            assert "backend.fallback" not in counters
        finally:
            obs.configure(enabled=False, reset=True)


class TestProtocolSurface:
    def test_cache_token_is_name_and_device(self, fake_backend):
        assert fake_backend.cache_token == "fake:fake0"
        assert backend_mod.get_backend("numpy").cache_token == "numpy:cpu"

    def test_full_datapath_flags(self, fake_backend):
        assert fake_backend.full_datapath
        assert NumpyBackend().full_datapath
        assert not ArrayBackend().full_datapath

    def test_capability_flags_dict(self, numpy_backend):
        flags = numpy_backend.capability_flags()
        assert flags == {"supports_uint64": True,
                         "exact_float64_matmul": True,
                         "numpy_dispatch": True,
                         "full_datapath": True}

    def test_backend_of_and_to_host(self, fake_backend):
        dev = fake_backend.from_host(np.arange(4, dtype=np.uint64))
        assert backend_mod.backend_of(dev) is fake_backend
        assert backend_mod.backend_of(np.arange(4)).name == "numpy"
        host = backend_mod.to_host(dev)
        assert type(host) is np.ndarray
        np.testing.assert_array_equal(host, np.arange(4))

    def test_gather_default(self, fake_backend):
        table = fake_backend.from_host(np.arange(8, dtype=np.uint64))
        idx = fake_backend.from_host(np.array([3, 1, 7]))
        out = fake_backend.gather(table, idx)
        assert isinstance(out, FakeDeviceArray)
        np.testing.assert_array_equal(backend_mod.to_host(out), [3, 1, 7])

    def test_mulmod_routes_through_kernel(self, fake_backend):
        q = 268369921
        a = np.array([5, q - 1, 12345], dtype=np.uint64)
        b = np.array([7, q - 1, 54321], dtype=np.uint64)
        out = backend_mod.to_host(fake_backend.mulmod(a, b, q))
        expected = (a.astype(object) * b.astype(object)) % q
        np.testing.assert_array_equal(out.astype(object), expected)

    def test_available_backends_report(self):
        report = backend_mod.available_backends()
        assert set(report) == set(backend_mod.BACKEND_NAMES)
        assert report["numpy"]["available"]
        assert report["fake"]["available"]
        for info in report.values():
            if info["available"]:
                assert "capabilities" in info and "device" in info
            else:
                assert "error" in info


class TestFakeDeviceArraySemantics:
    def test_ufuncs_preserve_residency(self, fake_backend):
        a = fake_backend.from_host(np.arange(8, dtype=np.uint64))
        assert isinstance(a + a, FakeDeviceArray)
        assert isinstance(np.mod(a, np.uint64(3)), FakeDeviceArray)

    def test_nep18_functions_retag(self, fake_backend):
        a = fake_backend.from_host(np.arange(8, dtype=np.uint64))
        assert isinstance(np.where(a > 3, a, a), FakeDeviceArray)
        assert isinstance(np.concatenate([a, a]), FakeDeviceArray)
        assert isinstance(np.stack([a, a]), FakeDeviceArray)
        assert isinstance(np.roll(a, 3), FakeDeviceArray)

    def test_transfer_ledger(self, fake_backend):
        fake_backend.reset_counters()
        dev = fake_backend.from_host(np.arange(4, dtype=np.uint64))
        fake_backend.from_host(dev)     # already resident: no count
        fake_backend.to_host(dev)
        fake_backend.empty((2, 2), np.uint64)
        counts = fake_backend.transfer_counts()
        assert counts == {"h2d": 1, "d2h": 1, "alloc": 1}
