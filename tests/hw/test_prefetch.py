"""Evk prefetch machinery: UnitTimeline, hbm_transfer, EvkPrefetcher.

The invariants throughput mode leans on: earliest-fit booking never
starts before the request, never overlaps, and backfills bubbles; the
double-buffered prefetcher's hit/miss tallies stay truthful under
eviction pressure; and a prefetch can never evict a key an in-flight
node still needs (pins), even when the key store is too small for the
working set.
"""

import pytest

from repro.core.hemera import KeyCache
from repro.hw.memory import (ClaimStats, EvkPrefetcher, UnitTimeline,
                             hbm_transfer)

BW = 100.0  # bytes/s: 1-byte key = 0.01 s transfer; easy arithmetic


class TestUnitTimeline:
    def test_alloc_never_starts_before_ready(self):
        tl = UnitTimeline()
        assert tl.alloc(5.0, 1.0) == 5.0
        assert tl.horizon == 6.0

    def test_fifo_when_contended(self):
        tl = UnitTimeline()
        assert tl.alloc(0.0, 2.0) == 0.0
        assert tl.alloc(0.0, 2.0) == 2.0
        assert tl.alloc(1.0, 1.0) == 4.0

    def test_backfills_earlier_bubbles(self):
        """The point of interval booking: a late-dispatched request
        with an early ready time takes the hole, not the tail."""
        tl = UnitTimeline()
        tl.alloc(0.0, 1.0)    # [0, 1)
        tl.alloc(3.0, 1.0)    # [3, 4)
        assert tl.alloc(0.0, 2.0) == 1.0   # fills [1, 3)
        assert tl.alloc(0.0, 1.5) == 4.0   # too big for any hole

    def test_bookings_never_overlap(self):
        tl = UnitTimeline()
        requests = [(0.0, 0.7), (0.2, 0.3), (0.0, 1.1), (0.5, 0.4),
                    (2.0, 0.2), (0.0, 0.6)]
        intervals = sorted((tl.alloc(r, d), d) for r, d in requests)
        for (a, da), (b, _) in zip(intervals, intervals[1:]):
            assert a + da <= b + 1e-12

    def test_empty_horizon_is_zero(self):
        assert UnitTimeline().horizon == 0.0


class TestHbmTransfer:
    def test_float_clock_is_fifo(self):
        """Latency mode: a float clock queues behind everything booked
        so far, regardless of the request time."""
        hbm, arrival = hbm_transfer(3.0, 0.0, 1.0)
        assert (hbm, arrival) == (4.0, 4.0)

    def test_unit_timeline_honours_request_time(self):
        tl = UnitTimeline()
        tl.alloc(0.0, 1.0)
        tl.alloc(5.0, 1.0)
        same, arrival = hbm_transfer(tl, 1.0, 2.0)
        assert same is tl
        assert arrival == 3.0   # booked into the [1, 5) hole


def make(capacity=10.0, slots=2):
    cache = KeyCache(capacity)
    return cache, EvkPrefetcher(cache, BW, slots=slots)


class TestPrefetchHitMissCounters:
    def test_prefetched_group_claims_as_hits(self):
        cache, pf = make()
        hbm, issued = pf.issue("n1", ["k1", "k2"], 1.0, 0.0)
        assert issued == 2.0
        stats, hbm = pf.claim("n1", ["k1", "k2"], 1.0, hbm)
        assert (stats.prefetch_hits, stats.demand_misses) == (2, 0)
        assert stats.arrival_s == pytest.approx(0.02)
        assert (pf.hits, pf.misses) == (2, 0)

    def test_unissued_group_claims_as_demand_misses(self):
        cache, pf = make()
        stats, _ = pf.claim("n1", ["k1", "k2"], 1.0, 0.0)
        assert (stats.prefetch_hits, stats.demand_misses) == (0, 2)
        assert stats.demand_bytes == 2.0
        assert (pf.hits, pf.misses) == (0, 2)

    def test_resident_keys_are_cache_hits_not_prefetch_hits(self):
        cache, pf = make()
        cache.insert("k1", 1.0)
        stats, _ = pf.claim("n1", ["k1"], 1.0, 0.0)
        assert stats == ClaimStats(arrival_s=0.0, prefetch_hits=0,
                                   cache_hits=1, demand_misses=0,
                                   demand_bytes=0.0)

    def test_counters_correct_under_eviction_pressure(self):
        """Keys issued into a cache too small to retain them: every
        claim must still tally truthfully (hits for covered keys,
        misses for the overflow the buffer could not hold)."""
        cache, pf = make(capacity=2.0)
        hbm, issued = pf.issue("n1", ["a", "b", "c"], 1.0, 0.0)
        assert issued == 3.0   # transfers charged even if "c" dropped
        stats, hbm = pf.claim("n1", ["a", "b", "c"], 1.0, hbm)
        assert stats.prefetch_hits == 3   # in-flight arrivals cover it
        pf.unpin_group(["a", "b", "c"])
        # Retired and (partly) evicted: the next claim of the key the
        # store never accepted is a demand miss again.
        stats, _ = pf.claim("n2", ["c"], 1.0, hbm)
        assert stats.demand_misses + stats.cache_hits == 1
        assert pf.hits == 3

    def test_issue_is_noop_when_buffer_full(self):
        cache, pf = make(slots=1)
        pf.issue("n1", ["a"], 1.0, 0.0)
        assert not pf.can_issue("n2")
        hbm, issued = pf.issue("n2", ["b"], 1.0, 0.0)
        assert issued == 0.0
        assert pf.outstanding == 1

    def test_reissue_same_token_is_noop(self):
        cache, pf = make()
        pf.issue("n1", ["a"], 1.0, 0.0)
        _, issued = pf.issue("n1", ["a"], 1.0, 0.0)
        assert issued == 0.0
        assert pf.issues == 1

    def test_at_least_one_slot_required(self):
        with pytest.raises(ValueError, match="at least one slot"):
            EvkPrefetcher(KeyCache(10.0), BW, slots=0)


class TestPinningUnderPressure:
    def test_prefetch_never_evicts_inflight_keys(self):
        """The safety property: with the store full of pinned keys, a
        new prefetch may be dropped but must never evict a key a
        node in flight still needs."""
        cache, pf = make(capacity=2.0)
        hbm, _ = pf.issue("n1", ["a", "b"], 1.0, 0.0)
        stats, hbm = pf.claim("n1", ["a", "b"], 1.0, hbm)
        # Node n1 is in flight: a, b pinned.  Prefetch two more keys.
        hbm, _ = pf.issue("n2", ["c", "d"], 1.0, hbm)
        assert cache.resident("a") and cache.resident("b")
        assert not cache.resident("c") and not cache.resident("d")
        assert cache.evictions == 0

    def test_unpin_releases_eviction_protection(self):
        cache, pf = make(capacity=2.0)
        hbm, _ = pf.issue("n1", ["a", "b"], 1.0, 0.0)
        stats, hbm = pf.claim("n1", ["a", "b"], 1.0, hbm)
        pf.unpin_group(["a", "b"])
        hbm, _ = pf.issue("n2", ["c", "d"], 1.0, hbm)
        assert cache.resident("c") and cache.resident("d")
        assert cache.evictions == 2

    def test_pins_are_ref_counted_across_groups(self):
        """Two nodes sharing a key: the first retirement must not
        strip the second node's protection."""
        cache, pf = make(capacity=1.0)
        stats, hbm = pf.claim("n1", ["a"], 1.0, 0.0)
        stats, hbm = pf.claim("n2", ["a"], 1.0, hbm)
        pf.unpin_group(["a"])          # n1 retires
        assert cache.pinned("a")       # n2 still holds a pin
        pf.unpin_group(["a"])          # n2 retires
        assert not cache.pinned("a")

    def test_inflight_transfer_shared_until_retirement(self):
        """Aligned streams: claims of a group another node fetched
        ride the same transfer (no duplicate HBM traffic) until the
        owner retires — the essential behaviour when one hoisted
        group exceeds the key store."""
        cache, pf = make(capacity=1.0)   # can hold 1 of the 2 keys
        hbm, issued = pf.issue("n1", ["a", "b"], 1.0, 0.0)
        assert issued == 2.0
        owner_stats, hbm = pf.claim("n1", ["a", "b"], 1.0, hbm)
        rider_stats, hbm = pf.claim("n2", ["a", "b"], 1.0, hbm)
        assert rider_stats.prefetch_hits == 2
        assert rider_stats.demand_bytes == 0.0
        assert rider_stats.arrival_s == owner_stats.arrival_s
        pf.unpin_group(["a", "b"])   # n1 retires
        pf.unpin_group(["a", "b"])   # n2 retires
        # Registrations dropped at retirement: a fresh claim now pays.
        fresh, _ = pf.claim("n3", ["a", "b"], 1.0, hbm)
        assert fresh.demand_misses + fresh.cache_hits == 2
        assert fresh.prefetch_hits == 0

    def test_demand_fetch_registers_in_flight(self):
        """Demand fetches share forward too: a second claim of a key
        another node demand-fetched rides the transfer."""
        cache, pf = make(capacity=0.5)   # nothing ever fits
        first, hbm = pf.claim("n1", ["a"], 1.0, 0.0)
        assert first.demand_misses == 1
        second, _ = pf.claim("n2", ["a"], 1.0, hbm)
        assert second.prefetch_hits == 1
        assert second.demand_misses == 0
        assert second.arrival_s == first.arrival_s


class TestDoubleBuffering:
    def test_two_slots_overlap_fetch_with_compute(self):
        """Classic double buffering on a UnitTimeline channel: group 2
        is issued at t=0 while group 1 executes, so its claim at
        t=0.02 finds the keys already landed."""
        cache, pf = make(capacity=10.0)
        hbm = UnitTimeline()
        hbm, _ = pf.issue("n1", ["a"], 1.0, hbm, request_s=0.0)
        hbm, _ = pf.issue("n2", ["b"], 1.0, hbm, request_s=0.0)
        assert pf.outstanding == 2
        s1, hbm = pf.claim("n1", ["a"], 1.0, hbm)
        s2, hbm = pf.claim("n2", ["b"], 1.0, hbm)
        assert s1.arrival_s == pytest.approx(0.01)
        assert s2.arrival_s == pytest.approx(0.02)
        assert pf.outstanding == 0

    def test_overlapping_group_rides_other_slots_transfer(self):
        cache, pf = make(capacity=10.0)
        hbm, first = pf.issue("n1", ["a", "b"], 1.0, 0.0)
        hbm, second = pf.issue("n2", ["b", "c"], 1.0, hbm)
        assert first == 2.0
        assert second == 1.0   # "b" already in flight; only "c" paid
        stats, _ = pf.claim("n2", ["b", "c"], 1.0, hbm)
        assert stats.prefetch_hits == 2
