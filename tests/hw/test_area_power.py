"""Area/power models: Fig. 4 scaling, Table 3 roll-up, variants."""

import pytest

from repro.hw import area as hw_area
from repro.hw import multiplier
from repro.hw.accelerator import Accelerator
from repro.hw.config import (FAST_CONFIG, FAST_36BIT_ALU, FAST_WITHOUT_TBM,
                             cluster_sweep, fast_variant, memory_sweep)


class TestFig4Scaling:
    def test_60_vs_36_anchors(self):
        """The paper's quoted 2.9x / 2.8x / 2.8x / 2.7x ratios."""
        assert multiplier.multiplier_area(60) / \
            multiplier.multiplier_area(36) == pytest.approx(2.9, rel=1e-6)
        assert multiplier.multiplier_power(60) / \
            multiplier.multiplier_power(36) == pytest.approx(2.8, rel=1e-6)
        assert multiplier.multiplier_area(60, modular=False) / \
            multiplier.multiplier_area(36, modular=False) == \
            pytest.approx(2.8, rel=1e-6)
        assert multiplier.multiplier_power(60, modular=False) / \
            multiplier.multiplier_power(36, modular=False) == \
            pytest.approx(2.7, rel=1e-6)

    def test_monotone_in_bits(self):
        widths = (24, 28, 32, 36, 48, 60, 64)
        areas = [multiplier.multiplier_area(b) for b in widths]
        assert areas == sorted(areas)

    def test_relative_scaling_normalised(self):
        rel = multiplier.relative_scaling((36, 60))
        assert rel[36]["area"] == pytest.approx(1.0)
        assert rel[60]["area"] == pytest.approx(2.9)

    def test_booth_composition_overhead(self):
        native = multiplier.multiplier_area(60)
        booth = multiplier.booth_60_from_36_area()
        assert booth / native == pytest.approx(1.275)
        assert multiplier.booth_60_from_36_power() / \
            multiplier.multiplier_power(60) == pytest.approx(1.30)

    def test_tbm_overhead_vs_conventional_60(self):
        tbm = multiplier.tbm_area()
        conventional = multiplier.multiplier_area(60)
        # +28% datapath +19% control
        assert tbm / conventional == pytest.approx(1.28 * 1.19)


class TestTable3:
    PAPER_ROWS = hw_area.PAPER_TABLE3_AREA_MM2

    def test_component_areas_within_tolerance(self):
        rows = hw_area.table3()
        for name, paper_area in self.PAPER_ROWS.items():
            ours = rows[name]["area_mm2"]
            assert ours == pytest.approx(paper_area, rel=0.05), name

    def test_component_powers_within_tolerance(self):
        rows = hw_area.table3()
        for name, paper_power in hw_area.PAPER_TABLE3_POWER_W.items():
            ours = rows[name]["power_w"]
            assert ours == pytest.approx(paper_power, rel=0.05), name

    def test_total_area_anchor(self):
        assert hw_area.area_for(FAST_CONFIG) == pytest.approx(
            hw_area.PAPER_TOTAL_AREA_MM2, rel=0.02)

    def test_paper_total_power_inconsistency_documented(self):
        """The paper's stated 337.5 W total does not equal the sum of
        its own component rows (356.7 W); our total matches the rows.
        """
        row_sum = sum(hw_area.PAPER_TABLE3_POWER_W.values())
        assert row_sum == pytest.approx(356.67, abs=0.5)
        ours = hw_area.table3()["Total"]["power_w"]
        assert ours == pytest.approx(row_sum, rel=0.02)


class TestVariantScaling:
    def test_eight_clusters_area_ratio(self):
        """Fig. 13b: 8 clusters cost ~1.37x the area."""
        four = hw_area.area_for(FAST_CONFIG)
        eight = hw_area.area_for(fast_variant("8C", clusters=8))
        assert 1.3 < eight / four < 1.5   # paper: 1.37x

    def test_two_clusters_cheaper(self):
        two = hw_area.area_for(fast_variant("2C", clusters=2))
        assert two < hw_area.area_for(FAST_CONFIG)

    def test_memory_sweep_monotone(self):
        areas = [hw_area.area_for(c)
                 for c in memory_sweep([128, 256, 384])]
        assert areas == sorted(areas)

    def test_no_tbm_datapath_smaller(self):
        # A fixed 60-bit multiplier is smaller than a TBM.
        assert hw_area.area_for(FAST_WITHOUT_TBM) < \
            hw_area.area_for(FAST_CONFIG)

    def test_36bit_alu_smallest(self):
        assert hw_area.area_for(FAST_36BIT_ALU) < \
            hw_area.area_for(FAST_WITHOUT_TBM)


class TestAccelerator:
    def test_throughput_modes(self):
        acc = Accelerator(FAST_CONFIG)
        ntt = acc.unit_throughput("ntt")
        assert ntt.narrow == ntt.wide            # uniform TBM slot rate
        acc36 = Accelerator(FAST_36BIT_ALU)
        assert acc36.unit_throughput("ntt").narrow == ntt.narrow / 2

    def test_kernel_cycles_positive(self):
        acc = Accelerator(FAST_CONFIG)
        assert acc.kernel_cycles("ntt", 1e6, wide=False) > 0
        assert acc.kernel_cycles("bconv", 0, wide=False) == 0

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            Accelerator(FAST_CONFIG).unit_throughput("fft3d")

    def test_supports_predicates(self):
        assert Accelerator(FAST_CONFIG).supports("klss")
        assert not Accelerator(FAST_36BIT_ALU).supports("klss")

    def test_cluster_sweep_configs(self):
        for config in cluster_sweep([2, 4, 8]):
            acc = Accelerator(config)
            assert acc.total_area_mm2() > 0
            assert acc.total_peak_power_w() > 0

    def test_register_file_bandwidth(self):
        acc = Accelerator(FAST_CONFIG)
        bw = acc.register_file.bandwidth_bytes_per_s()
        assert bw == pytest.approx(1024 * 9 * 1e9)  # 72b/lane/cycle

    def test_hbm_transfer_accounting(self):
        acc = Accelerator(FAST_CONFIG)
        stall = acc.hbm.record_key_transfer(1e9, window_s=0.5e-3)
        assert stall == pytest.approx(0.5e-3)
        assert acc.hbm.traffic.key_bytes == 1e9
        acc.hbm.reset()
        assert acc.hbm.traffic.total_bytes == 0

    def test_noc_transpose_cycles(self):
        acc = Accelerator(FAST_CONFIG)
        cycles = acc.noc.transpose_cycles(1 << 16, 1, wide=True)
        assert cycles == pytest.approx((1 << 16) / 512)
