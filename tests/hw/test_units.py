"""Functional + sizing tests for the hardware unit models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ckks import primes
from repro.hw.aem import (AuxiliaryExecutionModule, DoublePrimeScalingUnit,
                          EvaluationKeyGenerator, double_rescale_coeff)
from repro.hw.autou import (AutomorphismUnit, BenesNetwork,
                            automorphism_permutation)
from repro.hw.bconvu import BConvUnit, SystolicArray
from repro.hw.config import FAST_CONFIG, FAST_36BIT_ALU, FAST_WITHOUT_TBM
from repro.hw.kmu import KeyMultUnit, OutputStationaryArray
from repro.hw.nttu import (NttUnit, direct_cyclic_ntt, four_step_ntt,
                           negacyclic_via_four_step)


class TestFourStepNtt:
    N = 64
    Q = primes.ntt_primes(1, 24, 64)[0]

    def test_matches_direct(self, rng):
        omega = primes.root_of_unity(self.N, self.Q)
        x = rng.integers(0, self.Q, self.N)
        got = four_step_ntt(x, 8, 8, omega, self.Q)
        ref = direct_cyclic_ntt(x, omega, self.Q)
        assert list(got) == list(ref)

    def test_non_square_factorisation(self, rng):
        omega = primes.root_of_unity(self.N, self.Q)
        x = rng.integers(0, self.Q, self.N)
        got = four_step_ntt(x, 4, 16, omega, self.Q)
        ref = direct_cyclic_ntt(x, omega, self.Q)
        assert list(got) == list(ref)

    def test_negacyclic_variant(self, rng):
        psi = primes.root_of_unity(2 * self.N, self.Q)
        x = rng.integers(0, self.Q, self.N)
        got = negacyclic_via_four_step(x, 8, 8, psi, self.Q)
        ref = [sum(int(x[i]) * pow(psi, (2 * k + 1) * i, self.Q)
                   for i in range(self.N)) % self.Q
               for k in range(self.N)]
        assert list(got) == ref

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            four_step_ntt([1, 2, 3], 2, 2, 3, self.Q)


class TestNttUnitSizing:
    def test_elements_per_cycle(self):
        unit = NttUnit(FAST_CONFIG)
        assert unit.elements_per_cycle(wide=True) == 512   # 2 * sqrt(N)
        assert unit.elements_per_cycle(wide=False) == 512

    def test_no_tbm_halves_throughput(self):
        unit = NttUnit(FAST_WITHOUT_TBM)
        assert unit.elements_per_cycle(wide=False) == 256

    def test_cycles_for_limbs(self):
        unit = NttUnit(FAST_CONFIG)
        assert unit.cycles_for_limbs(2, wide=False) == \
            pytest.approx(2 * (1 << 16) / 512)

    def test_multiplier_count_structure(self):
        unit = NttUnit(FAST_CONFIG, ring_degree=1 << 16)
        assert unit.multiplier_count == 256 * 16 + 256


class TestSystolicBConv:
    def test_matrix_product_mod(self, rng):
        q = 97
        array = SystolicArray(height=4, width=8)
        limbs = rng.integers(0, q, (5, 3))
        table = rng.integers(0, q, (3, 6))
        out = array.run(limbs, table, q)
        ref = (limbs.astype(object) @ table.astype(object)) % q
        assert np.array_equal(out, ref)
        assert array.cycles == 3 + 5 + 6 - 1

    def test_oversized_matrix_rejected(self, rng):
        array = SystolicArray(height=2, width=2)
        with pytest.raises(ValueError):
            array.run(np.ones((1, 3), dtype=int),
                      np.ones((3, 1), dtype=int), 97)

    def test_dimension_mismatch_rejected(self):
        array = SystolicArray(4, 4)
        with pytest.raises(ValueError):
            array.run(np.ones((2, 3), dtype=int),
                      np.ones((2, 4), dtype=int), 97)


class TestBConvUnitSizing:
    def test_mac_count(self):
        unit = BConvUnit(FAST_CONFIG)
        assert unit.mac_count == 2 * 256 * 4

    def test_cycles_scale_inverse_with_parallelism(self):
        fast = BConvUnit(FAST_CONFIG)
        slow = BConvUnit(FAST_WITHOUT_TBM)
        assert fast.cycles_for_bconv(1 << 16, 5, 40, wide=False) == \
            pytest.approx(slow.cycles_for_bconv(1 << 16, 5, 40,
                                                wide=False) / 2)


class TestOutputStationaryKmu:
    def test_vector_matrix_product(self, rng):
        q = 257
        array = OutputStationaryArray(width=3, height=8)
        digits = rng.integers(0, q, (3, 8))
        keys = rng.integers(0, q, (3, 3, 8))
        out = array.run_vector_matrix(digits, keys, q)
        for j in range(3):
            for e in range(8):
                ref = sum(int(digits[b, e]) * int(keys[b, j, e])
                          for b in range(3)) % q
                assert int(out[j, e]) == ref

    def test_input_sharing_reduces_private_reads(self, rng):
        q = 257
        digits = rng.integers(0, q, (2, 16))
        keys = rng.integers(0, q, (2, 3, 16))
        shared = OutputStationaryArray()
        private = OutputStationaryArray()
        shared.run_vector_matrix(digits, keys, q, share_inputs=True)
        private.run_vector_matrix(digits, keys, q, share_inputs=False)
        assert shared.private_reads < private.private_reads

    def test_dimension_mismatch(self, rng):
        array = OutputStationaryArray()
        with pytest.raises(ValueError):
            array.run_vector_matrix(np.ones((2, 4), dtype=int),
                                    np.ones((3, 2, 4), dtype=int), 97)


class TestBenesNetwork:
    @pytest.mark.parametrize("ports", [2, 4, 16, 64])
    def test_routes_random_permutations(self, ports, rng):
        net = BenesNetwork(ports)
        for _ in range(5):
            perm = list(rng.permutation(ports))
            data = list(range(100, 100 + ports))
            out = net.apply(data, perm)
            assert all(out[perm[i]] == data[i] for i in range(ports))

    def test_routes_automorphism_permutations(self):
        net = BenesNetwork(32)
        for g in (5, 25, 3, 63):
            perm = automorphism_permutation(32, g)
            out = net.apply(list(range(32)), perm)
            assert sorted(out) == list(range(32))

    def test_stage_count(self):
        assert BenesNetwork(256).stages == 15
        assert BenesNetwork(2).stages == 1

    def test_invalid_ports(self):
        with pytest.raises(ValueError):
            BenesNetwork(3)

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError):
            BenesNetwork(4).apply([1, 2, 3, 4], [0, 0, 1, 2])


class TestAutomorphismPermutation:
    @pytest.mark.parametrize("g", [1, 3, 5, 25, 127])
    def test_is_bijection(self, g):
        perm = automorphism_permutation(64, g)
        assert sorted(perm) == list(range(64))


class TestAutoUnit:
    def test_throughput_modes(self):
        unit = AutomorphismUnit(FAST_CONFIG)
        assert unit.elements_per_cycle(wide=True) == 512
        unit36 = AutomorphismUnit(FAST_36BIT_ALU)
        assert unit36.elements_per_cycle(wide=False) == 256

    def test_table3_anchor(self):
        unit = AutomorphismUnit(FAST_CONFIG)
        assert 4 * unit.area_mm2() == pytest.approx(0.6)
        assert 4 * unit.peak_power_w() == pytest.approx(0.8)


class TestAem:
    def test_double_rescale_rounds(self):
        q1, q2, target = 97, 101, 103
        value = 5 * q1 * q2 + q1 * q2 // 3   # rounds to 5
        assert double_rescale_coeff(value, q1, q2, target) == 5
        value = -7 * q1 * q2 - q1 * q2 // 3  # rounds to -7
        assert double_rescale_coeff(value, q1, q2, target) == -7 % target

    def test_dsu_cycles(self):
        dsu = DoublePrimeScalingUnit(FAST_CONFIG)
        assert dsu.cycles_for_rescale(1 << 16, 8) == \
            pytest.approx((1 << 16) * 8 / 512)

    def test_ekg_deterministic(self):
        ekg = EvaluationKeyGenerator(FAST_CONFIG)
        moduli = primes.ntt_primes(2, 28, 32)
        a = ekg.expand(42, 32, moduli)
        b = ekg.expand(42, 32, moduli)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
        c = ekg.expand(43, 32, moduli)
        assert any(not np.array_equal(x, y) for x, y in zip(a, c))

    def test_ekg_halves_traffic(self):
        assert EvaluationKeyGenerator(FAST_CONFIG) \
            .traffic_saving_factor() == 0.5

    def test_aem_area_is_dsu_plus_ekg(self):
        aem = AuxiliaryExecutionModule(FAST_CONFIG)
        assert aem.area_mm2() == pytest.approx(
            aem.dsu.area_mm2() + aem.ekg.area_mm2())


class TestKmuUnitSizing:
    def test_mac_count(self):
        unit = KeyMultUnit(FAST_CONFIG)
        assert unit.mac_count == 3 * 256

    def test_keymult_cycles(self):
        unit = KeyMultUnit(FAST_CONFIG)
        assert unit.cycles_for_keymult(1536.0, wide=True) == \
            pytest.approx(1.0)


@given(st.integers(2, 6), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_property_benes_routes_everything(log_ports, seed):
    rng = np.random.default_rng(seed)
    ports = 1 << log_ports
    net = BenesNetwork(ports)
    perm = list(rng.permutation(ports))
    data = list(rng.integers(0, 1000, ports))
    out = net.apply(data, perm)
    assert all(out[perm[i]] == data[i] for i in range(ports))
