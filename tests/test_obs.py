"""The observability layer: no-op overhead, nesting, exporters."""

import json
import time

import pytest

from repro import obs
from repro.obs.tracer import NOOP_SPAN, Tracer
from repro.sim.engine import Engine, UNIT_NAMES
from repro.workloads import bootstrap_trace


@pytest.fixture()
def tracer():
    t = Tracer(enabled=True)
    yield t


@pytest.fixture(autouse=True)
def _clean_global():
    """Never leak global tracing state between tests."""
    yield
    obs.configure(enabled=False, reset=True)


class TestDisabledNoop:
    def test_span_returns_shared_singleton(self):
        t = Tracer(enabled=False)
        span = t.span("x", a=1)
        assert span is NOOP_SPAN
        assert t.span("y") is span  # no per-call allocation
        with span as s:
            s.set(more=2)
        assert t.spans == []

    def test_count_observe_event_record_nothing(self):
        t = Tracer(enabled=False)
        t.count("c", 5)
        t.observe("h", 1.0)
        t.event("e", 0.0, 1.0, track="nttu")
        assert t.metrics.counters() == {}
        assert t.metrics.histograms() == {}
        assert t.spans == []

    def test_disabled_calls_are_cheap(self):
        # Generous absolute bound: 200k disabled count+event calls in
        # well under a second (each is one attribute check + return).
        t = Tracer(enabled=False)
        start = time.perf_counter()
        for _ in range(200_000):
            t.count("c")
            t.event("e", 0.0, 1.0)
        assert time.perf_counter() - start < 2.0

    def test_disabled_by_default(self):
        assert Tracer().enabled is False


class TestSpans:
    def test_span_records_duration(self, tracer):
        with tracer.span("work", kind="test"):
            pass
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert span.name == "work"
        assert span.duration_s >= 0.0
        assert span.clock == obs.WALL
        assert span.labels == {"kind": "test"}

    def test_span_nesting_links_parents(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        inner_rec, outer_rec = tracer.spans  # inner finishes first
        assert inner_rec.name == "inner"
        assert inner_rec.parent_id == outer_rec.span_id
        assert outer_rec.parent_id is None

    def test_set_labels_after_exit(self, tracer):
        with tracer.span("s") as span:
            pass
        span.set(result=42)
        assert tracer.spans[0].labels["result"] == 42

    def test_sim_events_carry_track_and_clock(self, tracer):
        tracer.event("ntt", 1.5e-6, 2.5e-6, track="nttu", op="HMult")
        span = tracer.spans[0]
        assert span.clock == obs.SIM
        assert span.track == "nttu"
        assert span.start_s == 1.5e-6

    def test_max_events_cap(self):
        t = Tracer(enabled=True, max_events=3)
        for i in range(5):
            t.event("e", float(i), 1.0)
        assert len(t.spans) == 3
        assert t.dropped_events == 2

    def test_reset_clears_everything(self, tracer):
        with tracer.span("s"):
            tracer.count("c")
        tracer.reset()
        assert tracer.spans == [] and tracer.metrics.counters() == {}
        assert tracer.enabled  # reset keeps the enabled state


class TestMetrics:
    def test_counter_accumulates(self, tracer):
        tracer.count("hits")
        tracer.count("hits", 2.5)
        assert tracer.counter_value("hits") == 3.5

    def test_histogram_summary(self, tracer):
        for v in (1.0, 2.0, 4.0):
            tracer.observe("lat", v)
        summary = tracer.metrics.histograms()["lat"]
        assert summary["count"] == 3
        assert summary["total"] == 7.0
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(7.0 / 3)
        assert summary["buckets_pow2"] == {"0": 1, "1": 1, "2": 1}

    def test_empty_histogram_summary(self):
        from repro.obs.metrics import Histogram
        assert Histogram("x").summary()["count"] == 0


class TestExporters:
    def _traced(self):
        t = Tracer(enabled=True)
        with t.span("wall-work", n=8):
            pass
        t.event("ntt", 0.0, 1e-6, track="nttu", op="HMult")
        t.count("calls", 2)
        t.observe("lat", 0.5)
        return t

    def test_json_snapshot_schema(self):
        snap = self._traced().snapshot()
        assert snap["schema"] == "repro-obs/v1"
        for key in ("enabled", "num_spans", "dropped_events", "spans",
                    "counters", "histograms"):
            assert key in snap
        assert snap["num_spans"] == len(snap["spans"]) == 2
        assert snap["counters"] == {"calls": 2}
        json.dumps(snap)  # round-trippable

    def test_span_dict_fields(self):
        snap = self._traced().snapshot()
        sim = next(s for s in snap["spans"] if s["clock"] == "sim")
        assert sim["track"] == "nttu"
        assert sim["labels"] == {"op": "HMult"}
        assert sim["duration_s"] == 1e-6

    def test_write_json(self, tmp_path):
        path = tmp_path / "obs.json"
        obs.write_json(self._traced(), str(path))
        assert json.loads(path.read_text())["schema"] == "repro-obs/v1"

    def test_chrome_trace_structure(self):
        t = self._traced()
        doc = obs.to_chrome_trace(t)
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        assert {m["name"] for m in meta} >= {"process_name",
                                             "thread_name"}
        sim_event = next(e for e in complete if e["name"] == "ntt")
        assert sim_event["dur"] == pytest.approx(1.0)  # microseconds
        # wall and sim spans live in different chrome processes
        wall_event = next(e for e in complete if e["name"] == "wall-work")
        assert wall_event["pid"] != sim_event["pid"]

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(self._traced(), str(path))
        assert "traceEvents" in json.loads(path.read_text())


class TestEngineIntegration:
    def test_traced_run_matches_untraced(self):
        trace = bootstrap_trace()
        plain = Engine().run(trace)
        obs.configure(enabled=True, reset=True)
        traced = Engine().run(trace)
        assert traced.total_s == plain.total_s
        assert traced.key_cache_hit_rate == plain.key_cache_hit_rate

    def test_engine_emits_unit_tracks_and_counters(self):
        obs.configure(enabled=True, reset=True)
        Engine().run(bootstrap_trace())
        tracer = obs.get_tracer()
        tracks = {s.track for s in tracer.spans if s.clock == obs.SIM}
        assert set(UNIT_NAMES) <= tracks
        assert "op" in tracks
        counters = tracer.metrics.counters()
        assert counters["engine.ops"] > 0
        assert counters["aether.units"] > 0
        assert counters["lower.schedules"] == counters["engine.ops"]
        assert (counters["engine.key_cache_hits"]
                + counters["engine.key_cache_misses"]) > 0

    def test_result_cache_rate_consistent(self):
        result = Engine().run(bootstrap_trace())
        lookups = result.key_cache_hits + result.key_cache_misses
        assert lookups > 0
        assert result.key_cache_hit_rate == pytest.approx(
            result.key_cache_hits / lookups)
