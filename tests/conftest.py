"""Shared fixtures: toy CKKS contexts and common objects.

Functional tests run scaled-down rings (N = 16..64) on the int64 fast
path; the structure (digit grouping, special primes, gadget digits)
matches the full-size sets.  Contexts are session-scoped — key
generation is the expensive part — and tests never mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks import CkksContext, toy_params
from repro.ckks.params import SET_I, SET_II


@pytest.fixture(scope="session")
def params32():
    return toy_params(ring_degree=32, max_level=4, alpha=2, prime_bits=28)


@pytest.fixture(scope="session")
def ctx32(params32):
    return CkksContext(params32, seed=1234)


@pytest.fixture(scope="session")
def params64():
    return toy_params(ring_degree=64, max_level=6, alpha=3, prime_bits=26,
                      scale_bits=26, klss_digit_bits=13)


@pytest.fixture(scope="session")
def ctx64(params64):
    return CkksContext(params64, seed=99)


@pytest.fixture(scope="session")
def set_i():
    return SET_I


@pytest.fixture(scope="session")
def set_ii():
    return SET_II


@pytest.fixture()
def rng():
    return np.random.default_rng(2024)


def slot_vector(num_slots: int, length: int, rng=None, complex_vals=False):
    """A repeating message vector compatible with the packing rules."""
    if rng is None:
        rng = np.random.default_rng(0)
    base = rng.uniform(-2, 2, length)
    if complex_vals:
        base = base + 1j * rng.uniform(-2, 2, length)
    return np.tile(base, num_slots // length), base
