"""Cross-layer integration: Aether decisions driving real encryption,
workloads through the simulator, and failure-injection checks."""

import numpy as np
import pytest

from repro.ckks import CkksContext, linalg, toy_params
from repro.ckks.keys import HYBRID, KLSS
from repro.ckks.params import SET_I, SET_II
from repro.core.aether import Aether
from repro.core.optrace import TraceBuilder
from repro.hw.config import FAST_CONFIG, fast_variant
from repro.sim.engine import Engine
from repro.workloads import bootstrap_trace, helr_trace


class TestAetherDrivesFunctionalScheme:
    """The offline tool's config file steers the real cryptography."""

    def test_selector_plugs_into_context(self):
        # Build a config whose majority choice at the mult level is
        # KLSS, hand its selector to a real context, and verify the
        # computation stays correct under the mixed policy.
        aether = Aether(SET_I, SET_II, key_storage_bytes=300e6,
                        hbm_bandwidth=1e12, modops_per_second=1.2e13)
        tb = TraceBuilder()
        ct_id = tb.fresh_ct()
        for _ in range(3):
            tb.hmult(ct_id, 4)
        config = aether.run(tb.build())
        selector = config.selector()

        params = toy_params(ring_degree=32, max_level=4, alpha=2,
                            prime_bits=28)
        ctx = CkksContext(params, seed=2, method_selector=selector)
        v = np.array([0.5, -1.0, 2.0, 0.25])
        ct = ctx.encrypt(np.tile(v, 4))
        out = ctx.rescale(ctx.multiply(ct, ct, method="auto"))
        assert ctx.noise_infinity(out, v * v) < 1e-3

    def test_mixed_methods_compose_in_one_computation(self):
        ctx = CkksContext(toy_params(ring_degree=32, max_level=5,
                                     alpha=2, prime_bits=28), seed=3)
        v = np.array([1.0, -0.5, 0.25, 2.0])
        ct = ctx.encrypt(np.tile(v, 4))
        step1 = ctx.rescale(ctx.multiply(ct, ct, method=HYBRID))
        step2 = ctx.rotate(step1, 1, method=KLSS)
        step3 = ctx.rescale(ctx.multiply(
            step2, ctx.level_down(ct, step2.level), method=KLSS))
        expected = np.roll(v * v, -1) * v
        assert ctx.noise_infinity(step3, expected) < 1e-2


class TestEncryptedPipelines:
    def test_matvec_then_activation(self):
        """A one-layer encrypted inference: W x + poly activation."""
        ctx = CkksContext(toy_params(ring_degree=64, max_level=6,
                                     alpha=2, prime_bits=28,
                                     scale_bits=28), seed=4)
        rng = np.random.default_rng(0)
        w = rng.uniform(-0.5, 0.5, (4, 4))
        x = rng.uniform(-1, 1, 4)
        ct = ctx.encrypt(np.tile(x, 8))
        hidden = linalg.matvec_bsgs(ctx, w, ct, baby_steps=2)
        activated = linalg.evaluate_polynomial(ctx, hidden,
                                               [0.0, 0.5, 0.25])
        ref = w @ x
        ref = 0.5 * ref + 0.25 * ref ** 2
        got = ctx.decrypt(activated)[:4].real
        assert np.max(np.abs(got - ref)) < 2e-2


class TestWorkloadsOnVariants:
    def test_helr_iterations_scale_linearly(self):
        engine = Engine()
        one = engine.run(helr_trace(batch=256, iterations=1))
        two = Engine().run(helr_trace(batch=256, iterations=2))
        ratio = two.total_s / one.total_s
        assert 1.7 < ratio < 2.1  # near-linear; key reuse helps a bit

    def test_key_reuse_across_iterations(self):
        one = Engine().run(helr_trace(batch=256, iterations=1))
        two = Engine().run(helr_trace(batch=256, iterations=2))
        # the compact hybrid keys stay cached; large KLSS keys are
        # evicted and refetched, so traffic is sub-linear, not flat
        assert two.key_bytes < 1.8 * one.key_bytes

    def test_all_policies_agree_on_op_totals(self):
        trace = bootstrap_trace()
        ks = len(trace.key_switch_ops())
        for mode in ("aether", "hybrid-only", "hoisting-only"):
            result = Engine(policy_mode=mode).run(trace)
            assert result.num_key_switches == ks


class TestFailureInjection:
    def test_zero_bandwidth_starves_execution(self):
        config = fast_variant("starved", hbm_bandwidth_bytes=1e9)  # 1 GB/s
        result = Engine(config).run(bootstrap_trace())
        healthy = Engine(FAST_CONFIG).run(bootstrap_trace())
        assert result.total_s > 5 * healthy.total_s

    def test_tiny_key_storage_falls_back_to_hybrid(self):
        config = fast_variant("nokeys", key_storage_bytes=8 * 2**20,
                              onchip_memory_bytes=128 * 2**20)
        engine = Engine(config)
        result = engine.run(bootstrap_trace())
        assert result.method_ops.get(KLSS, 0) == 0
        assert result.total_s > 0

    def test_single_lane_cluster_still_completes(self):
        config = fast_variant("minimal", clusters=1,
                              lanes_per_cluster=256)
        result = Engine(config).run(bootstrap_trace())
        assert result.total_s > \
            Engine(FAST_CONFIG).run(bootstrap_trace()).total_s * 2
