"""Smoke tests: the runnable examples must stay runnable."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "bootstrap latency" in out
        assert "hoisted rotations" in out

    def test_functional_bootstrap(self):
        out = run_example("functional_bootstrap.py")
        assert "bootstrap error" in out
        assert "multiplies again" in out

    def test_aether_playground(self):
        out = run_example("aether_playground.py")
        assert "Methods Candidate Table" in out
        assert "method mix" in out

    @pytest.mark.slow
    def test_encrypted_logistic_regression(self):
        out = run_example("encrypted_logistic_regression.py")
        assert "final accuracy" in out

    @pytest.mark.slow
    def test_accelerator_design_space(self):
        out = run_example("accelerator_design_space.py")
        assert "datapath ablation" in out

    @pytest.mark.slow
    def test_paper_evaluation(self):
        out = run_example("paper_evaluation.py")
        assert "Table 5" in out
