"""The stacked serving substrate: batching must be invisible in bits."""

import numpy as np
import pytest

from repro.ckks import primes
from repro.ckks.rns import get_plan
from repro.core.optrace import TraceBuilder
from repro.sched.executor import FunctionalExecutor
from repro.serve.engine import RowBatchNtt, ServeExecutor
from repro.serve.jobs import get_shape


@pytest.fixture(scope="module")
def executor():
    return ServeExecutor(ring_degree=64, num_limbs=2)


def mixed_trace():
    tb = TraceBuilder("mixed")
    for _ in range(2):
        ct = tb.fresh_ct()
        tb.hmult(ct, 6)
        tb.hrot(ct, 6, rotation=5)
        tb.pmult(ct, 6)
        tb.rescale(ct, 6)
    return tb.build()


class TestRowBatchNtt:
    def test_forward_matches_scalar_plan_per_row(self):
        q = primes.ntt_primes(1, 36, 64)[0]
        batch = RowBatchNtt(64, q)
        plan = get_plan(64, q)
        rng = np.random.default_rng(7)
        rows = rng.integers(0, q, size=(5, 64), dtype=np.uint64)
        stacked = batch.forward(rows)
        for i, row in enumerate(rows):
            expected = np.asarray(plan.forward(row), dtype=np.uint64)
            assert np.array_equal(stacked[i], expected), i

    def test_inverse_roundtrip_is_identity(self):
        q = primes.ntt_primes(1, 36, 64)[0]
        batch = RowBatchNtt(64, q)
        rng = np.random.default_rng(8)
        rows = rng.integers(0, q, size=(3, 64), dtype=np.uint64)
        assert np.array_equal(batch.inverse(batch.forward(rows)), rows)

    def test_inverse_matches_scalar_plan_per_row(self):
        q = primes.ntt_primes(1, 36, 64)[0]
        batch = RowBatchNtt(64, q)
        plan = get_plan(64, q)
        rng = np.random.default_rng(9)
        rows = rng.integers(0, q, size=(4, 64), dtype=np.uint64)
        stacked = batch.inverse(rows)
        for i, row in enumerate(rows):
            expected = np.asarray(plan.inverse(row), dtype=np.uint64)
            assert np.array_equal(stacked[i], expected), i


class TestStackedBitExactness:
    @pytest.mark.parametrize("batch", [1, 3, 8])
    def test_batch_matches_serial_oracle(self, executor, batch):
        trace = mixed_trace()
        seeds = [executor.request_seed(r) for r in range(batch)]
        check = executor.verify_batch(trace, seeds)
        assert check.bit_exact, check.mismatched
        assert check.batch == batch

    def test_helr_mini_step_shape(self, executor):
        trace = get_shape("helr-mini-step")
        seeds = [executor.request_seed(r) for r in range(4)]
        check = executor.verify_batch(trace, seeds)
        assert check.bit_exact, check.mismatched
        assert check.num_ops == len(trace)

    def test_digest_independent_of_batch_mates(self, executor):
        """The digest of request r must not depend on who shared the
        batch — the property that makes batching transparent."""
        trace = mixed_trace()
        s0 = executor.request_seed(0)
        alone = executor.run_batch(trace, [s0])
        with_1 = executor.run_batch(trace, [s0, executor.request_seed(1)])
        with_99 = executor.run_batch(trace,
                                     [s0, executor.request_seed(99)])
        digest = executor.digest_row(alone, 0)
        assert executor.digest_row(with_1, 0) == digest
        assert executor.digest_row(with_99, 0) == digest

    def test_serial_digest_equals_batch_row_digest(self, executor):
        trace = mixed_trace()
        seeds = [executor.request_seed(r) for r in range(3)]
        batched = executor.run_batch(trace, seeds)
        for row, seed in enumerate(seeds):
            serial = executor.run_serial(trace, seed)
            assert executor.digest_serial(serial) \
                == executor.digest_row(batched, row)


class TestPooledBackend:
    def test_pooled_matches_stacked(self, executor):
        trace = mixed_trace()
        seeds = [executor.request_seed(r) for r in range(4)]
        pool_host = FunctionalExecutor(ring_degree=64, num_limbs=2,
                                       persistent=True)
        try:
            state, parallel = executor.run_batch_pooled(
                trace, seeds, pool_host, workers=2)
        finally:
            pool_host.close()
        # Sandboxes without fork still produce bit-exact results via
        # the in-process fallback (parallel=False).
        reference = executor.run_batch(trace, seeds)
        assert set(state) == set(reference)
        for ct in reference:
            assert np.array_equal(np.asarray(state[ct], dtype=np.uint64),
                                  reference[ct]), (ct, parallel)
