"""Tenant quotas, pinned-key safety, and counter accounting."""

import pytest

from repro.ckks.keys import HYBRID
from repro.ckks.params import SET_I, SET_II
from repro.core.hemera import EvkPool, KeyId
from repro.hw.memory import PartitionedKeyCache
from repro.serve.tenants import TenantKeyManager, TenantQuotaError


def rot_keys(start, count, level=20):
    return [KeyId(HYBRID, level, "rot", start + i) for i in range(count)]


@pytest.fixture()
def pool():
    return EvkPool(SET_I, SET_II)


def key_bytes(pool, keys):
    return sum(pool.lookup(key).size_bytes for key in keys)


class TestQuota:
    def test_working_set_over_quota_raises_named_error(self, pool):
        keys = rot_keys(0, 4)
        quota = key_bytes(pool, keys) * 0.5
        cache = PartitionedKeyCache(key_bytes(pool, keys) * 10,
                                    default_quota_bytes=quota)
        manager = TenantKeyManager(pool, cache)
        with pytest.raises(TenantQuotaError):
            manager.acquire("greedy", keys)

    def test_quota_failure_mutates_nothing(self, pool):
        keys = rot_keys(0, 4)
        cache = PartitionedKeyCache(
            key_bytes(pool, keys) * 10,
            default_quota_bytes=key_bytes(pool, keys) * 0.5)
        manager = TenantKeyManager(pool, cache)
        with pytest.raises(TenantQuotaError):
            manager.acquire("greedy", keys)
        stats = manager.stats("greedy")
        assert stats.evk_hits == 0 and stats.evk_misses == 0
        assert stats.bytes_fetched == 0
        assert cache.resident_bytes() == 0
        assert manager.totals().evk_misses == 0

    def test_per_tenant_quota_override(self, pool):
        keys = rot_keys(0, 2)
        total = key_bytes(pool, keys)
        cache = PartitionedKeyCache(total * 10)
        manager = TenantKeyManager(pool, cache)
        manager.register("small", quota_bytes=total * 0.5)
        with pytest.raises(TenantQuotaError):
            manager.acquire("small", keys)
        # Other tenants keep the default (full-capacity) quota.
        lease = manager.acquire("large", keys)
        assert lease.misses == len(keys)


class TestPinnedKeySafety:
    def test_eviction_never_drops_pinned_inflight_key(self, pool):
        held = rot_keys(0, 2)
        churn = rot_keys(100, 6)
        # Capacity fits the held set plus one churn key: every churn
        # insert must evict, but only ever unpinned entries.
        capacity = key_bytes(pool, held) \
            + key_bytes(pool, churn[:1]) * 1.01
        cache = PartitionedKeyCache(capacity)
        manager = TenantKeyManager(pool, cache)
        lease = manager.acquire("holder", held)
        for key in churn:
            churn_lease = manager.acquire("churner", [key])
            manager.release(churn_lease)
        for key in held:
            assert cache.resident(key), key
        assert manager.pin_violations == 0
        manager.release(lease)

    def test_unevictable_pressure_streams_instead_of_forcing(self, pool):
        held = rot_keys(0, 2)
        capacity = key_bytes(pool, held) * 1.01
        cache = PartitionedKeyCache(capacity)
        manager = TenantKeyManager(pool, cache)
        lease = manager.acquire("holder", held)
        # Everything resident is pinned: the next working set cannot
        # be cached and must stream through.
        other = manager.acquire("other", rot_keys(50, 2))
        assert manager.stats("other").streamed_keys == 2
        assert manager.eviction_report()["dropped_inserts"] >= 1
        assert manager.pin_violations == 0
        manager.release(lease)
        manager.release(other)

    def test_release_is_idempotent(self, pool):
        cache = PartitionedKeyCache(1e12)
        manager = TenantKeyManager(pool, cache)
        lease = manager.acquire("t", rot_keys(0, 2))
        manager.release(lease)
        manager.release(lease)
        for key in lease.pinned:
            assert not cache.pinned(key)


class TestCounterAccounting:
    def test_per_tenant_counters_sum_to_global(self, pool):
        cache = PartitionedKeyCache(1e12)
        manager = TenantKeyManager(pool, cache)
        workloads = {"a": rot_keys(0, 3), "b": rot_keys(0, 3),
                     "c": rot_keys(200, 5)}
        for tenant, keys in workloads.items():
            manager.count_request(tenant)
            manager.release(manager.acquire(tenant, keys))
        per_tenant = [manager.stats(t) for t in manager.tenants()]
        totals = manager.totals()
        for attribute in ("requests", "evk_hits", "evk_misses",
                          "bytes_fetched", "streamed_keys"):
            assert sum(getattr(s, attribute) for s in per_tenant) \
                == getattr(totals, attribute), attribute
        # Tenant b reuses a's residency: cross-tenant hits count.
        assert manager.stats("b").evk_hits == 3
        assert manager.stats("b").evk_misses == 0

    def test_hit_rate_and_to_dict(self, pool):
        cache = PartitionedKeyCache(1e12)
        manager = TenantKeyManager(pool, cache)
        manager.release(manager.acquire("t", rot_keys(0, 2)))
        manager.release(manager.acquire("t", rot_keys(0, 2)))
        assert manager.stats("t").evk_hit_rate == 0.5
        dump = manager.to_dict()
        assert dump["tenants"]["t"]["evk_hits"] == 2
        assert dump["pin_violations"] == 0
