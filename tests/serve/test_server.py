"""The asyncio front-end: batching, bit-exactness, tenancy, TCP."""

import asyncio
import json

import pytest

from repro.serve.jobs import get_shape, request_seed
from repro.serve.server import FheServer, ServerConfig


def small_config(**overrides):
    base = dict(ring_degree=64, num_limbs=2, window_s=0.01,
                max_batch=8, optimise=False, price_sim=False)
    base.update(overrides)
    return ServerConfig(**base)


def run(coro):
    return asyncio.run(coro)


async def with_server(config, body):
    server = FheServer(config)
    try:
        return await body(server)
    finally:
        await server.close()


class TestSubmit:
    def test_concurrent_submits_share_a_batch(self):
        async def body(server):
            return await asyncio.gather(*[
                server.submit(f"tenant-{i % 2}", request_id=i)
                for i in range(4)])

        responses = run(with_server(small_config(), body))
        assert all(r.ok for r in responses)
        assert all(r.batch_size == 4 for r in responses)

    def test_digests_match_serial_oracle(self):
        config = small_config()

        async def body(server):
            responses = await asyncio.gather(*[
                server.submit("t", request_id=i) for i in range(3)])
            oracle = {}
            for response in responses:
                state = server.executor.run_serial(
                    get_shape(response.shape),
                    request_seed(config.seed, response.request_id))
                oracle[response.request_id] = \
                    server.executor.digest_serial(state)
            return responses, oracle

        responses, oracle = run(with_server(config, body))
        for response in responses:
            assert response.digest == oracle[response.request_id]

    def test_max_batch_flushes_early(self):
        config = small_config(max_batch=2, window_s=30.0)

        async def body(server):
            # A 30 s window would time the test out unless reaching
            # max_batch flushes the group immediately.
            return await asyncio.wait_for(
                asyncio.gather(server.submit("a", request_id=0),
                               server.submit("b", request_id=1)),
                timeout=10.0)

        responses = run(with_server(config, body))
        assert [r.batch_size for r in responses] == [2, 2]

    def test_duplicate_inflight_id_is_rejected(self):
        config = small_config(window_s=5.0)

        async def body(server):
            first = asyncio.ensure_future(
                server.submit("t", request_id=7))
            await asyncio.sleep(0)      # let the first enqueue
            duplicate = await server.submit("t", request_id=7)
            server.flush_all()
            return await first, duplicate

        first, duplicate = run(with_server(config, body))
        assert first.ok
        assert not duplicate.ok and "already in flight" in duplicate.error

    def test_unknown_kind_and_shape_raise(self):
        async def body(server):
            with pytest.raises(ValueError):
                await server.submit("t", kind="transmogrify")
            with pytest.raises(ValueError):
                await server.submit("t", shape="no-such-shape")
            return True

        assert run(with_server(small_config(), body))

    def test_quota_exceeded_surfaces_as_response_error(self):
        config = small_config(tenant_quotas={"capped": 1.0})

        async def body(server):
            return await server.submit("capped", request_id=0)

        response = run(with_server(config, body))
        assert not response.ok
        assert "quota" in response.error

    def test_stats_after_serving(self):
        async def body(server):
            await asyncio.gather(*[
                server.submit("t", request_id=i) for i in range(3)])
            return server.stats()

        stats = run(with_server(small_config(), body))
        assert stats["responses"] == 3
        assert stats["batches"] == 1
        assert stats["mean_batch"] == 3.0
        assert stats["tenancy"]["tenants"]["t"]["requests"] == 3
        assert stats["tenancy"]["pin_violations"] == 0


class TestTcpEndpoint:
    def test_roundtrip_batches_one_connection(self):
        async def body(server):
            host, port = await server.start_tcp()
            reader, writer = await asyncio.open_connection(host, port)
            for rid in range(3):
                writer.write((json.dumps(
                    {"tenant": f"t{rid % 2}", "kind": "eval",
                     "request_id": rid}) + "\n").encode())
            await writer.drain()
            payloads = [json.loads(await reader.readline())
                        for _ in range(3)]
            writer.close()
            await writer.wait_closed()
            return payloads

        payloads = run(with_server(small_config(), body))
        assert {p["request_id"] for p in payloads} == {0, 1, 2}
        assert all(p["error"] is None for p in payloads)
        assert all(p["batch_size"] == 3 for p in payloads)
        assert all(p["digest"] for p in payloads)

    def test_malformed_line_answers_error(self):
        async def body(server):
            host, port = await server.start_tcp()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            await writer.drain()
            payload = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            return payload

        payload = run(with_server(small_config(), body))
        assert "bad request" in payload["error"]


class TestLifecycle:
    def test_close_drains_pending_batches(self):
        config = small_config(window_s=60.0)

        async def body(server):
            # The window never expires on its own: close() must flush.
            futures = [asyncio.ensure_future(
                server.submit("t", request_id=i)) for i in range(2)]
            await asyncio.sleep(0)
            await server.close()
            return await asyncio.gather(*futures)

        async def scenario():
            server = FheServer(config)
            return await body(server)

        responses = run(scenario())
        assert all(r.ok for r in responses)

    def test_submit_after_close_raises(self):
        async def scenario():
            server = FheServer(small_config())
            await server.close()
            with pytest.raises(RuntimeError):
                await server.submit("t")
            return True

        assert run(scenario())
