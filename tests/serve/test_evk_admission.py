"""Cross-stream evk-aware admission: grouping cuts prefetch misses.

The satellite's acceptance evidence: on a key-disjoint workload pair
against a capacity-limited key store, draining the queue in
evk-aware order produces strictly fewer ``hemera.prefetch.miss``
events than the naive interleaved order.
"""

import pytest

from repro import obs
from repro.ckks.params import SET_I, SET_II
from repro.core.hemera import EvkPool
from repro.core.optrace import TraceBuilder
from repro.hw.memory import PartitionedKeyCache
from repro.serve.batcher import evk_aware_order, evk_working_set
from repro.serve.tenants import TenantKeyManager


def rotations_trace(name, amounts):
    builder = TraceBuilder(name)
    ct = builder.fresh_ct()
    for amount in amounts:
        builder.hrot(ct, 20, rotation=amount)
    return builder.build()


@pytest.fixture()
def tracing():
    obs.configure(enabled=True, reset=True)
    yield obs.get_tracer()
    obs.configure(enabled=False, reset=True)


@pytest.fixture()
def workload():
    set_a = evk_working_set(rotations_trace("wsA", range(1, 7)))
    set_b = evk_working_set(rotations_trace("wsB", range(101, 107)))
    assert not set_a & set_b
    pool = EvkPool(SET_I, SET_II)
    set_bytes = sum(pool.lookup(key).size_bytes for key in set_a)
    # Room for one working set (plus slack), never both at once.
    return [set_a, set_b] * 4, set_bytes * 1.3


def drain(queue, capacity, order):
    manager = TenantKeyManager(EvkPool(SET_I, SET_II),
                               PartitionedKeyCache(capacity))
    for position in order:
        lease = manager.acquire(f"tenant-{position % 4}",
                                queue[position])
        manager.release(lease)
    return manager


class TestEvkAwareAdmission:
    def test_grouping_reduces_prefetch_miss_counter(self, tracing,
                                                    workload):
        queue, capacity = workload
        drain(queue, capacity, range(len(queue)))
        naive_misses = tracing.counter_value("hemera.prefetch.miss")
        naive_hits = tracing.counter_value("hemera.prefetch.hit")
        tracing.reset()
        drain(queue, capacity, evk_aware_order(queue))
        aware_misses = tracing.counter_value("hemera.prefetch.miss")
        aware_hits = tracing.counter_value("hemera.prefetch.hit")
        # Interleaved: every alternation refetches the whole set.
        # Grouped: each set is fetched once and then rides residency.
        assert aware_misses < naive_misses
        assert aware_hits > naive_hits
        assert aware_misses == len(set(queue)) * len(queue[0])

    def test_manager_counters_match_tracer(self, tracing, workload):
        queue, capacity = workload
        manager = drain(queue, capacity, evk_aware_order(queue))
        totals = manager.totals()
        assert tracing.counter_value("hemera.prefetch.miss") \
            == totals.evk_misses
        assert tracing.counter_value("hemera.prefetch.hit") \
            == totals.evk_hits

    def test_per_tenant_counters_are_attributed(self, tracing,
                                                workload):
        queue, capacity = workload
        manager = drain(queue, capacity, evk_aware_order(queue))
        for tenant in manager.tenants():
            stats = manager.stats(tenant)
            prefix = f"serve.tenant.{tenant}."
            counters = tracing.counters_with_prefix(prefix)
            assert counters.get(prefix + "evk_hits", 0) \
                == stats.evk_hits
            assert counters.get(prefix + "evk_misses", 0) \
                == stats.evk_misses

    def test_disabled_tracer_emits_nothing(self, workload):
        queue, capacity = workload
        obs.configure(enabled=False, reset=True)
        drain(queue, capacity, range(len(queue)))
        assert obs.get_tracer().counter_value("hemera.prefetch.miss") \
            == 0
