"""Admission bookkeeping and the evk-aware stream ordering."""

import pytest

from repro.ckks.keys import HYBRID
from repro.core.hemera import KeyId
from repro.core.optrace import TraceBuilder
from repro.serve.batcher import (BatchKey, BatchQueue, evk_aware_order,
                                 evk_working_set)
from repro.serve.jobs import ServeRequest


def request(rid, kind="eval", shape="helr-mini-step", tenant="t"):
    return ServeRequest(tenant=tenant, kind=kind, shape=shape,
                        request_id=rid)


class TestBatchQueue:
    def test_first_request_opens_group(self):
        queue = BatchQueue(max_batch=4)
        key, opened, full = queue.add(request(0))
        assert key == BatchKey("eval", "helr-mini-step")
        assert opened and not full
        _, opened, _ = queue.add(request(1))
        assert not opened

    def test_group_fills_at_max_batch(self):
        queue = BatchQueue(max_batch=2)
        _, _, full = queue.add(request(0))
        assert not full
        key, _, full = queue.add(request(1))
        assert full
        assert [r.request_id for r in queue.take(key)] == [0, 1]
        assert queue.take(key) == []        # take is destructive

    def test_distinct_shapes_do_not_mix(self):
        queue = BatchQueue(max_batch=8)
        queue.add(request(0, shape="helr-mini-step"))
        queue.add(request(1, shape="encode-mini", kind="encode"))
        assert len(queue) == 2
        assert queue.depth() == 2
        taken = queue.take(BatchKey("eval", "helr-mini-step"))
        assert [r.request_id for r in taken] == [0]
        assert queue.depth() == 1

    def test_rejects_degenerate_max_batch(self):
        with pytest.raises(ValueError):
            BatchQueue(max_batch=0)


class TestEvkWorkingSet:
    def test_collects_keyswitch_keys_only(self):
        tb = TraceBuilder("ws")
        ct = tb.fresh_ct()
        tb.hmult(ct, 9)
        tb.hrot(ct, 9, rotation=3)
        tb.pmult(ct, 9)                     # no key switch
        tb.rescale(ct, 9)                   # no key switch
        working = evk_working_set(tb.build())
        assert working == frozenset({
            KeyId(HYBRID, 9, "mult"),
            KeyId(HYBRID, 9, "rot", 3),
        })

    def test_disjoint_rotations_disjoint_sets(self):
        def rots(name, amounts):
            tb = TraceBuilder(name)
            ct = tb.fresh_ct()
            for amount in amounts:
                tb.hrot(ct, 5, rotation=amount)
            return evk_working_set(tb.build())

        assert not rots("a", [1, 2]) & rots("b", [10, 11])


class TestEvkAwareOrder:
    def _sets(self, letters):
        table = {"A": frozenset({KeyId(HYBRID, 5, "rot", 1)}),
                 "B": frozenset({KeyId(HYBRID, 5, "rot", 2)}),
                 "C": frozenset({KeyId(HYBRID, 5, "rot", 3)})}
        return [table[letter] for letter in letters]

    def test_is_a_permutation(self):
        sets = self._sets("ABABAB")
        order = evk_aware_order(sets)
        assert sorted(order) == list(range(6))

    def test_contiguous_grouping_by_default(self):
        sets = self._sets("ABABAB")
        order = evk_aware_order(sets)
        drained = [sets[i] for i in order]
        # Same-set streams must be adjacent: exactly one transition.
        transitions = sum(1 for a, b in zip(drained, drained[1:])
                          if a != b)
        assert transitions == 1

    def test_largest_bucket_first(self):
        sets = self._sets("ABBB")
        order = evk_aware_order(sets)
        assert [sets[i] for i in order[:3]] == [sets[1]] * 3

    def test_cluster_mode_aligns_buckets_to_clusters(self):
        sets = self._sets("AABB")
        order = evk_aware_order(sets, clusters=2)
        # Position p runs on cluster p % 2: each bucket must land on
        # one cluster only.
        homes = {}
        for position, index in enumerate(order):
            homes.setdefault(sets[index], set()).add(position % 2)
        assert all(len(clusters) == 1 for clusters in homes.values())

    def test_cluster_mode_steals_when_counts_skew(self):
        sets = self._sets("AAAB")
        order = evk_aware_order(sets, clusters=2)
        assert sorted(order) == list(range(4))

    def test_rejects_bad_cluster_count(self):
        with pytest.raises(ValueError):
            evk_aware_order(self._sets("AB"), clusters=0)
