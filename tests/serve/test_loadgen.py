"""Loadgen reporting and per-request seed reproducibility."""

import asyncio

import pytest

from repro.sched.executor import _MIX, FunctionalExecutor
from repro.serve.jobs import request_seed
from repro.serve.loadgen import format_report, percentile, run_loadgen
from repro.serve.server import FheServer, ServerConfig

_MASK = 0xFFFFFFFFFFFFFFFF


def small_config(**overrides):
    base = dict(ring_degree=64, num_limbs=2, window_s=0.005,
                max_batch=8, optimise=False, price_sim=False)
    base.update(overrides)
    return ServerConfig(**base)


class TestRequestSeeds:
    """Satellite regression: serve-path seeding is the executor's
    stream-mix scheme keyed by request id."""

    def test_matches_executor_stream_mix(self):
        executor = FunctionalExecutor(ring_degree=16, num_limbs=1,
                                      seed=0xC0FFEE)
        for rid in (0, 1, 7, 1024, 2**40):
            assert request_seed(0xC0FFEE, rid) \
                == executor.stream_seed(rid)

    def test_scheme_literal(self):
        base = 20250806
        for rid in range(64):
            assert request_seed(base, rid) \
                == (base ^ (rid * _MIX)) & _MASK

    def test_request_zero_keeps_base_seed(self):
        assert request_seed(12345, 0) == 12345

    def test_no_collisions_across_many_requests(self):
        base = 20250806
        seeds = {request_seed(base, rid) for rid in range(4096)}
        assert len(seeds) == 4096

    def test_concurrent_encrypts_are_reproducible(self):
        """Same request id -> same digest, on two separate servers
        with different batch-mates."""
        config = small_config()

        async def serve(ids):
            server = FheServer(config)
            try:
                responses = await asyncio.gather(*[
                    server.submit("t", kind="encrypt", request_id=rid)
                    for rid in ids])
            finally:
                await server.close()
            return {r.request_id: r.digest for r in responses}

        first = asyncio.run(serve([0, 1, 2]))
        second = asyncio.run(serve([2, 9, 11]))
        assert first[2] == second[2]
        assert len(set(first.values())) == 3   # non-colliding


class TestPercentile:
    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50.0) == 20.0
        assert percentile(values, 99.0) == 40.0
        assert percentile([], 50.0) == 0.0


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def report(self):
        return run_loadgen(config=small_config(), tenants=4,
                           requests_per_tenant=4, concurrency=2)

    def test_serves_every_request(self, report):
        assert report.requests == 16
        assert report.errors == 0
        assert report.mode == "closed"

    def test_bit_exact_against_serial_oracle(self, report):
        assert report.bit_exact is True
        assert report.serial_s > 0
        assert report.speedup > 0

    def test_latency_and_batching_reported(self, report):
        assert report.p99_ms >= report.p50_ms > 0
        assert report.mean_batch > 1.0     # batching actually happened
        assert 0.0 < report.batch_occupancy <= 1.0
        assert report.max_queue_depth >= 1
        assert report.pin_violations == 0

    def test_per_tenant_hit_rates(self, report):
        assert set(report.per_tenant) \
            == {f"tenant-{i}" for i in range(4)}
        assert all(0.0 <= rate <= 1.0
                   for rate in report.per_tenant.values())

    def test_format_report_lines(self, report):
        lines = format_report(report)
        text = "\n".join(lines)
        assert "closed-loop" in text
        assert "p99" in text and "speedup" in text

    def test_to_dict_round_trips(self, report):
        record = report.to_dict()
        assert record["requests"] == 16
        assert record["bit_exact"] is True
        assert "server_stats" not in record


class TestOpenLoop:
    def test_open_loop_mode(self):
        report = run_loadgen(config=small_config(), tenants=2,
                             requests_per_tenant=3, mode="open",
                             rate_rps=500.0, compare_serial=False)
        assert report.mode == "open"
        assert report.requests == 6
        assert report.errors == 0
        assert report.speedup is None

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            run_loadgen(config=small_config(), mode="sideways")

    def test_rejects_degenerate_counts(self):
        with pytest.raises(ValueError):
            run_loadgen(config=small_config(), tenants=0)
