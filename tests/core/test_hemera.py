"""Hemera: evk pool, key cache, history recorder, transfer report."""

import pytest

from repro.ckks.keys import HYBRID, KLSS
from repro.ckks.params import SET_I, SET_II
from repro.core.aether import Aether
from repro.core.hemera import (EvkPool, Hemera, HistoryRecorder, KeyCache,
                               KeyId)
from repro.core.optrace import TraceBuilder


def make_aether():
    return Aether(SET_I, SET_II, key_storage_bytes=180e6,
                  hbm_bandwidth=1e12, modops_per_second=1.2e13)


def trace():
    tb = TraceBuilder("t")
    ct = tb.fresh_ct()
    tb.rotations(ct, 20, [1, 2, 3], hoisted=True)
    tb.hmult(ct, 18)
    tb.hmult(ct, 16)
    return tb.build()


class TestEvkPool:
    def test_lookup_is_stable(self):
        pool = EvkPool(SET_I, SET_II)
        k = KeyId(HYBRID, 20, "mult")
        r1, r2 = pool.lookup(k), pool.lookup(k)
        assert r1 is r2
        assert len(pool) == 1

    def test_addresses_do_not_overlap(self):
        pool = EvkPool(SET_I, SET_II)
        r1 = pool.lookup(KeyId(HYBRID, 20, "mult"))
        r2 = pool.lookup(KeyId(HYBRID, 20, "rot", 1))
        assert r2.hbm_address >= r1.hbm_address + int(r1.size_bytes)

    def test_klss_keys_bigger(self):
        pool = EvkPool(SET_I, SET_II)
        h = pool.lookup(KeyId(HYBRID, 20, "mult"))
        k = pool.lookup(KeyId(KLSS, 20, "mult"))
        assert k.size_bytes > h.size_bytes

    def test_level_group(self):
        pool = EvkPool(SET_I, SET_II)
        group = pool.level_group(12, HYBRID, [1, 2, 4])
        assert len(group) == 4  # mult + 3 rotations


class TestKeyCache:
    def test_insert_and_contains(self):
        cache = KeyCache(100.0)
        k = KeyId(HYBRID, 5, "mult")
        assert not cache.contains(k)
        cache.insert(k, 40.0)
        assert cache.contains(k)
        assert cache.resident_bytes() == 40.0

    def test_lru_eviction(self):
        cache = KeyCache(100.0)
        k1, k2, k3 = (KeyId(HYBRID, i, "mult") for i in (1, 2, 3))
        cache.insert(k1, 40.0)
        cache.insert(k2, 40.0)
        cache.contains(k1)          # touch k1 -> k2 becomes LRU
        cache.insert(k3, 40.0)
        assert cache.contains(k1)
        assert not cache.contains(k3) or not cache.contains(k2)

    def test_oversized_key_not_inserted(self):
        cache = KeyCache(10.0)
        cache.insert(KeyId(HYBRID, 1, "mult"), 50.0)
        assert cache.resident_bytes() == 0.0

    def test_reinsert_is_noop(self):
        cache = KeyCache(100.0)
        k = KeyId(HYBRID, 1, "mult")
        cache.insert(k, 40.0)
        cache.insert(k, 40.0)
        assert cache.resident_bytes() == 40.0


class TestHistoryRecorder:
    def test_predict_before_record_misses(self):
        h = HistoryRecorder()
        assert h.predict("HMult", 5) is None
        assert h.misses == 1

    def test_predict_after_record_hits(self):
        h = HistoryRecorder()
        h.record("HMult", 5, HYBRID, 1)
        assert h.predict("HMult", 5) == (HYBRID, 1)
        assert h.hits == 1

    def test_record_overwrites(self):
        h = HistoryRecorder()
        h.record("HRot", 9, HYBRID, 2)
        h.record("HRot", 9, KLSS, 1)
        assert h.predict("HRot", 9) == (KLSS, 1)


class TestHemeraManage:
    def test_report_accounting_identity(self):
        aether = make_aether()
        t = trace()
        config = aether.run(t)
        hemera = Hemera(config, EvkPool(SET_I, SET_II),
                        key_storage_bytes=180e6, hbm_bandwidth=1e12)
        report = hemera.manage(t, aether)
        assert report.total_bytes == pytest.approx(
            sum(e.bytes_moved for e in report.events))
        assert report.total_stall_s <= report.total_transfer_s
        assert 0.0 <= report.hidden_fraction <= 1.0

    def test_second_pass_hits_cache_and_history(self):
        aether = make_aether()
        t = trace()
        config = aether.run(t)
        hemera = Hemera(config, EvkPool(SET_I, SET_II),
                        key_storage_bytes=500e6, hbm_bandwidth=1e12)
        first = hemera.manage(t, aether)
        second = hemera.manage(t, aether)
        assert second.total_bytes < first.total_bytes or \
            second.cache_hits > first.cache_hits
        assert hemera.history.hits > 0

    def test_batches_match_granularity(self):
        aether = make_aether()
        t = trace()
        config = aether.run(t)
        hemera = Hemera(config, EvkPool(SET_I, SET_II),
                        key_storage_bytes=180e6, hbm_bandwidth=1e12)
        report = hemera.manage(t, aether)
        for event in report.events:
            if event.bytes_moved:
                elements = event.bytes_moved / hemera.word_bytes
                assert event.batches >= elements / 256 / 2  # ekg halves

    def test_ekg_factor_halves_traffic(self):
        aether = make_aether()
        t = trace()
        config = aether.run(t)
        pool = EvkPool(SET_I, SET_II)
        with_ekg = Hemera(config, pool, 180e6, 1e12, use_ekg=True)
        without = Hemera(config, EvkPool(SET_I, SET_II), 180e6, 1e12,
                         use_ekg=False)
        r1 = with_ekg.manage(t, aether)
        r2 = without.manage(t, aether)
        assert r1.total_bytes == pytest.approx(r2.total_bytes / 2)
