"""Aether: MCT construction, STEP-1/2/3 selection, config file."""

import pytest

from repro.ckks.keys import HYBRID, KLSS
from repro.ckks.params import SET_I, SET_II
from repro.core import optrace
from repro.core.aether import Aether, AetherConfig
from repro.core.optrace import TraceBuilder


def make_aether(key_storage=180e6, bandwidth=1e12, throughput=1.2e13,
                **kw):
    return Aether(SET_I, SET_II, key_storage_bytes=key_storage,
                  hbm_bandwidth=bandwidth, modops_per_second=throughput,
                  **kw)


def simple_trace():
    tb = TraceBuilder("t")
    ct = tb.fresh_ct()
    tb.rotations(ct, 30, [1, 2, 4, 8], hoisted=True)
    tb.hmult(ct, 28)
    tb.pmult(ct, 28)          # not a decision unit
    ct2 = tb.fresh_ct()
    tb.hrot(ct2, 10, 5)
    return tb.build()


class TestDecisionUnits:
    def test_hoist_group_fuses(self):
        units = make_aether().decision_units(simple_trace())
        assert len(units) == 3
        assert units[0].times == 4
        assert units[1].first.kind == optrace.HMULT
        assert units[2].first.rotation == 5

    def test_plain_ops_excluded(self):
        units = make_aether().decision_units(simple_trace())
        kinds = {u.first.kind for u in units}
        assert optrace.PMULT not in kinds

    def test_indices_track_trace_positions(self):
        trace = simple_trace()
        units = make_aether().decision_units(trace)
        for unit in units:
            for idx, op in zip(unit.indices, unit.ops):
                assert trace[idx] is op


class TestMct:
    def test_candidates_cover_methods(self):
        aether = make_aether()
        units = aether.decision_units(simple_trace())
        cands = aether.candidates(units[0])
        methods = {e.method for e in cands}
        assert methods == {HYBRID, KLSS}

    def test_hoisting_options_for_groups(self):
        aether = make_aether()
        units = aether.decision_units(simple_trace())
        hs = {e.hoisting for e in aether.candidates(units[0])}
        assert hs == {1, 2, 4}

    def test_hmult_never_hoisted(self):
        aether = make_aether()
        units = aether.decision_units(simple_trace())
        hs = {e.hoisting for e in aether.candidates(units[1])}
        assert hs == {1}

    def test_entry_fields_consistent(self):
        aether = make_aether()
        units = aether.decision_units(simple_trace())
        for e in aether.candidates(units[0]):
            assert e.cost_modops > 0
            assert e.delay_s == pytest.approx(
                e.cost_modops / aether.modops_per_second)
            assert e.transfer_s == pytest.approx(
                e.key_bytes / aether.hbm_bandwidth)

    def test_ekg_halves_key_bytes(self):
        with_ekg = make_aether(use_ekg=True)
        without = make_aether(use_ekg=False)
        units = with_ekg.decision_units(simple_trace())
        k1 = with_ekg.candidates(units[0])[0].key_bytes
        k2 = without.candidates(units[0])[0].key_bytes
        assert k1 == pytest.approx(k2 / 2)


class TestSelection:
    def test_step1_storage_filter(self):
        # Tiny key storage: every multi-key hoisting candidate dies
        # and KLSS (big keys) dies; hybrid h=1 survives.
        aether = make_aether(key_storage=8e6)
        config = aether.run(simple_trace())
        for d in config.decisions.values():
            assert d.key_bytes <= 8e6 or d.hoisting == 1

    def test_step2_transfer_filter(self):
        # Absurdly slow HBM: nothing hides, fallback keeps cheapest.
        aether = make_aether(bandwidth=1e6)
        config = aether.run(simple_trace())
        assert len(config.decisions) == 3

    def test_step3_prefers_fast_then_small(self):
        aether = make_aether()
        config = aether.run(simple_trace())
        unit0 = config.decisions[0]
        # hoisting reduces ops; with ample storage it must be chosen
        assert unit0.hoisting > 1

    def test_deterministic(self):
        t = simple_trace()
        c1 = make_aether().run(t)
        c2 = make_aether().run(t)
        assert c1.to_json() == c2.to_json()


class TestConfigFile:
    def test_json_roundtrip(self):
        config = make_aether().run(simple_trace())
        back = AetherConfig.from_json(config.to_json())
        assert back.decisions.keys() == config.decisions.keys()
        for uid in config.decisions:
            assert back.decisions[uid].method == \
                config.decisions[uid].method

    def test_size_is_small(self):
        # The paper quotes ~1 KB for an application's config file.
        config = make_aether().run(simple_trace())
        assert config.size_bytes() < 4096

    def test_method_histogram_counts_ops(self):
        config = make_aether().run(simple_trace())
        hist = config.method_histogram()
        assert sum(hist.values()) == 6  # 4 + 1 + 1 key-switches

    def test_selector_defaults_to_hybrid(self):
        config = AetherConfig()
        assert config.selector()("HMult", 12, 0) == HYBRID

    def test_selector_follows_majority(self):
        config = make_aether().run(simple_trace())
        select = config.selector()
        mapping = config.level_method_map()
        for (kind, level), method in mapping.items():
            op = "HMult" if kind == optrace.HMULT else "HRot"
            assert select(op, level, 0) == method


class TestBootstrapDecisions:
    """Sanity on the real workload: the paper's placement pattern."""

    def test_klss_appears_at_mid_levels_only(self):
        from repro.workloads import bootstrap_trace
        from repro.sim.engine import Engine
        engine = Engine()
        config = engine.aether.run(bootstrap_trace())
        klss_levels = [d.level for d in config.decisions.values()
                       if d.method == KLSS]
        hybrid_units = [d for d in config.decisions.values()
                        if d.method == HYBRID]
        assert klss_levels, "expected some KLSS adoption"
        assert hybrid_units, "expected hybrid to remain in the mix"

    def test_hoisting_used_for_baby_steps(self):
        from repro.workloads import bootstrap_trace
        from repro.sim.engine import Engine
        engine = Engine()
        config = engine.aether.run(bootstrap_trace())
        assert any(d.hoisting > 1 for d in config.decisions.values())
