"""Tunable-Bit Multiplier: bit-exactness, modes, usage accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tbm import (BASE_MULTIPLIERS_PER_TBM, MULT_REDUCTION,
                            TunableBitMultiplier)


@pytest.fixture()
def tbm():
    return TunableBitMultiplier()


class TestConstruction:
    def test_default_widths(self, tbm):
        assert tbm.narrow_bits == 36
        assert tbm.wide_bits == 60

    def test_invalid_width_combinations(self):
        with pytest.raises(ValueError):
            TunableBitMultiplier(36, 36)     # wide must exceed narrow
        with pytest.raises(ValueError):
            TunableBitMultiplier(36, 80)     # > 2x narrow
        with pytest.raises(ValueError):
            TunableBitMultiplier(60, 36)

    def test_alternative_widths(self):
        t = TunableBitMultiplier(12, 24)
        assert t.mul_wide(2**23, 2**23 + 5) == 2**23 * (2**23 + 5)

    def test_structural_constants(self):
        assert BASE_MULTIPLIERS_PER_TBM == 3
        # 3 instead of 4 partial products (the paper rounds the
        # saving up to "33%"; structurally it is 1 - 3/4).
        assert MULT_REDUCTION == pytest.approx(0.25)


class TestWideMode:
    def test_exactness_edge_cases(self, tbm):
        cases = [(0, 0), (1, 1), (2**60 - 1, 2**60 - 1),
                 (2**36 - 1, 2**36 + 1), (2**59, 3), (1, 2**60 - 1)]
        for a, b in cases:
            assert tbm.mul_wide(a, b) == a * b

    def test_out_of_range_rejected(self, tbm):
        with pytest.raises(ValueError):
            tbm.mul_wide(2**60, 1)
        with pytest.raises(ValueError):
            tbm.mul_wide(1, -1)

    def test_uses_three_base_multipliers(self, tbm):
        tbm.stats.reset()
        tbm.mul_wide(123, 456)
        assert tbm.stats.base_mult_uses == 3
        assert tbm.stats.wide_ops == 1
        assert tbm.stats.cycles == 1

    def test_modmul_wide(self, tbm):
        q = (1 << 59) - 55
        assert tbm.modmul_wide(q - 1, q - 1, q) == (q - 1) ** 2 % q


class TestNarrowMode:
    def test_pair_exactness(self, tbm):
        p, q = tbm.mul_narrow_pair((2**36 - 1, 3), (2**36 - 1, 5))
        assert p == (2**36 - 1) ** 2
        assert q == 15

    def test_pair_uses_two_base_multipliers(self, tbm):
        tbm.stats.reset()
        tbm.mul_narrow_pair((1, 2), (3, 4))
        assert tbm.stats.base_mult_uses == 2
        assert tbm.stats.narrow_ops == 2
        assert tbm.stats.cycles == 1

    def test_single_narrow(self, tbm):
        assert tbm.mul_narrow(12345, 6789) == 12345 * 6789

    def test_narrow_out_of_range(self, tbm):
        with pytest.raises(ValueError):
            tbm.mul_narrow(2**36, 1)

    def test_modmul_pair(self, tbm):
        q1, q2 = 268435009, 268435459
        a, b = 2**28 - 5, 2**27 + 11
        p, q = tbm.modmul_narrow_pair((a, b), (b, a), (q1, q2))
        assert p == a * b % q1
        assert q == b * a % q2


class TestThroughputAccounting:
    def test_products_per_cycle(self, tbm):
        assert tbm.products_per_cycle(wide=False) == 2
        assert tbm.products_per_cycle(wide=True) == 1

    def test_mixed_workload_counters(self, tbm):
        tbm.stats.reset()
        for _ in range(10):
            tbm.mul_wide(7, 9)
        for _ in range(5):
            tbm.mul_narrow_pair((1, 2), (3, 4))
        assert tbm.stats.cycles == 15
        assert tbm.stats.base_mult_uses == 40
        assert tbm.stats.wide_ops == 10
        assert tbm.stats.narrow_ops == 10


@given(st.integers(0, 2**60 - 1), st.integers(0, 2**60 - 1))
@settings(max_examples=300, deadline=None)
def test_property_wide_exact(a, b):
    assert TunableBitMultiplier().mul_wide(a, b) == a * b


@given(st.integers(0, 2**36 - 1), st.integers(0, 2**36 - 1),
       st.integers(0, 2**36 - 1), st.integers(0, 2**36 - 1))
@settings(max_examples=200, deadline=None)
def test_property_narrow_pair_exact(a0, a1, b0, b1):
    p, q = TunableBitMultiplier().mul_narrow_pair((a0, a1), (b0, b1))
    assert p == a0 * b0 and q == a1 * b1


@given(st.integers(13, 36), st.integers(0, 2**32))
@settings(max_examples=100, deadline=None)
def test_property_any_width_tbm(narrow, seed):
    import random
    rnd = random.Random(seed)
    wide = rnd.randint(narrow + 1, 2 * narrow)
    t = TunableBitMultiplier(narrow, wide)
    a = rnd.getrandbits(wide) % (1 << wide)
    b = rnd.getrandbits(wide) % (1 << wide)
    assert t.mul_wide(a, b) == a * b
