"""The operation-flow IR: ops, traces, builders, hoist groups."""

import pytest

from repro.core import optrace
from repro.core.optrace import FheOp, OpTrace, TraceBuilder


class TestFheOp:
    def test_valid_kinds(self):
        for kind in optrace.ALL_KINDS:
            op = FheOp(kind=kind, level=3)
            assert op.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FheOp(kind="Teleport", level=1)

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            FheOp(kind=optrace.HMULT, level=-1)

    def test_needs_key_switch(self):
        assert FheOp(optrace.HMULT, 2).needs_key_switch
        assert FheOp(optrace.HROT, 2).needs_key_switch
        assert FheOp(optrace.CONJ, 2).needs_key_switch
        assert not FheOp(optrace.PMULT, 2).needs_key_switch
        assert not FheOp(optrace.RESCALE, 2).needs_key_switch

    def test_with_creates_modified_copy(self):
        op = FheOp(optrace.HROT, 5, rotation=3)
        op2 = op.with_(level=4)
        assert op2.level == 4 and op2.rotation == 3
        assert op.level == 5


class TestOpTrace:
    def make(self):
        tb = TraceBuilder("t")
        ct = tb.fresh_ct()
        tb.rotations(ct, 5, [1, 2, 3], hoisted=True, stage="A")
        tb.hmult(ct, 4, stage="A")
        tb.pmult(ct, 4, stage="B")
        tb.rescale(ct, 4, stage="B")
        return tb.build()

    def test_len_iter_getitem(self):
        trace = self.make()
        assert len(trace) == 6
        assert trace[0].kind == optrace.HROT
        assert [op.kind for op in trace][-1] == optrace.RESCALE

    def test_key_switch_ops(self):
        trace = self.make()
        assert len(trace.key_switch_ops()) == 4

    def test_hoist_groups(self):
        groups = self.make().hoist_groups()
        assert len(groups) == 1
        (_, ops), = groups.items()
        assert [op.rotation for op in ops] == [1, 2, 3]

    def test_histograms(self):
        trace = self.make()
        hist = trace.kind_histogram()
        assert hist[optrace.HROT] == 3
        assert hist[optrace.HMULT] == 1
        levels = trace.level_histogram()
        assert levels[5] == 3 and levels[4] == 1

    def test_stages_and_slicing(self):
        trace = self.make()
        assert trace.stages() == ["A", "B"]
        assert len(trace.slice_stage("B")) == 2

    def test_concat_rebases_groups(self):
        a, b = self.make(), self.make()
        joined = a.concat(b)
        assert len(joined.hoist_groups()) == 2

    def test_repeated_rebases_groups(self):
        trace = self.make().repeated(3)
        assert len(trace) == 18
        assert len(trace.hoist_groups()) == 3

    def test_repeated_requires_positive(self):
        with pytest.raises(ValueError):
            self.make().repeated(0)


class TestTraceBuilder:
    def test_fresh_ct_increments(self):
        tb = TraceBuilder()
        assert tb.fresh_ct() == 0
        assert tb.fresh_ct() == 1

    def test_rotations_unhoisted(self):
        tb = TraceBuilder()
        tb.rotations(tb.fresh_ct(), 5, [1, 2], hoisted=False)
        assert not tb.build().hoist_groups()

    def test_distinct_hoist_groups(self):
        tb = TraceBuilder()
        ct = tb.fresh_ct()
        tb.rotations(ct, 5, [1, 2])
        tb.rotations(ct, 4, [1, 2])
        assert len(tb.build().hoist_groups()) == 2
