"""The operation-flow IR: ops, traces, builders, hoist groups."""

import pytest

from repro.core import optrace
from repro.core.optrace import FheOp, OpTrace, TraceBuilder


class TestFheOp:
    def test_valid_kinds(self):
        for kind in optrace.ALL_KINDS:
            op = FheOp(kind=kind, level=3)
            assert op.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FheOp(kind="Teleport", level=1)

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            FheOp(kind=optrace.HMULT, level=-1)

    def test_needs_key_switch(self):
        assert FheOp(optrace.HMULT, 2).needs_key_switch
        assert FheOp(optrace.HROT, 2).needs_key_switch
        assert FheOp(optrace.CONJ, 2).needs_key_switch
        assert not FheOp(optrace.PMULT, 2).needs_key_switch
        assert not FheOp(optrace.RESCALE, 2).needs_key_switch

    def test_with_creates_modified_copy(self):
        op = FheOp(optrace.HROT, 5, rotation=3)
        op2 = op.with_(level=4)
        assert op2.level == 4 and op2.rotation == 3
        assert op.level == 5


class TestOpTrace:
    def make(self):
        tb = TraceBuilder("t")
        ct = tb.fresh_ct()
        tb.rotations(ct, 5, [1, 2, 3], hoisted=True, stage="A")
        tb.hmult(ct, 4, stage="A")
        tb.pmult(ct, 4, stage="B")
        tb.rescale(ct, 4, stage="B")
        return tb.build()

    def test_len_iter_getitem(self):
        trace = self.make()
        assert len(trace) == 6
        assert trace[0].kind == optrace.HROT
        assert [op.kind for op in trace][-1] == optrace.RESCALE

    def test_key_switch_ops(self):
        trace = self.make()
        assert len(trace.key_switch_ops()) == 4

    def test_hoist_groups(self):
        groups = self.make().hoist_groups()
        assert len(groups) == 1
        (_, ops), = groups.items()
        assert [op.rotation for op in ops] == [1, 2, 3]

    def test_histograms(self):
        trace = self.make()
        hist = trace.kind_histogram()
        assert hist[optrace.HROT] == 3
        assert hist[optrace.HMULT] == 1
        levels = trace.level_histogram()
        assert levels[5] == 3 and levels[4] == 1

    def test_stages_and_slicing(self):
        trace = self.make()
        assert trace.stages() == ["A", "B"]
        assert len(trace.slice_stage("B")) == 2

    def test_concat_rebases_groups(self):
        a, b = self.make(), self.make()
        joined = a.concat(b)
        assert len(joined.hoist_groups()) == 2

    def test_repeated_rebases_groups(self):
        trace = self.make().repeated(3)
        assert len(trace) == 18
        assert len(trace.hoist_groups()) == 3

    def test_repeated_requires_positive(self):
        with pytest.raises(ValueError):
            self.make().repeated(0)


class TestValidate:
    def test_clean_trace_validates(self):
        trace = TestOpTrace().make()
        assert trace.validate() == []
        assert trace.check() is trace

    def test_negative_ct_id_flagged(self):
        trace = OpTrace([FheOp(optrace.HADD, 3, ct_id=-2)])
        assert any("negative ct_id" in v for v in trace.validate())

    def test_unknown_ct_id_flagged_when_declared(self):
        tb = TraceBuilder("t")
        ct = tb.fresh_ct()
        tb.hmult(ct, 5)
        tb.trace.append(FheOp(optrace.HADD, 5, ct_id=99))
        assert any("unknown ct_id 99" in v for v in tb.build().validate())

    def test_unknown_ct_ok_without_declarations(self):
        trace = OpTrace([FheOp(optrace.HADD, 5, ct_id=99)])
        assert trace.validate() == []

    def test_level_rise_flagged(self):
        trace = OpTrace([FheOp(optrace.HMULT, 3, ct_id=0),
                         FheOp(optrace.HADD, 5, ct_id=0)])
        assert any("level rises" in v for v in trace.validate())

    def test_mod_raise_may_raise_level(self):
        trace = OpTrace([FheOp(optrace.RESCALE, 1, ct_id=0),
                         FheOp(optrace.MOD_RAISE, 14, ct_id=0)])
        assert trace.validate() == []

    def test_level_rise_on_other_ct_independent(self):
        trace = OpTrace([FheOp(optrace.HMULT, 3, ct_id=0),
                         FheOp(optrace.HMULT, 9, ct_id=1)])
        assert trace.validate() == []

    def test_hoist_group_interleaved_same_ct_flagged(self):
        trace = OpTrace([
            FheOp(optrace.HROT, 5, ct_id=0, rotation=1, hoist_group=0),
            FheOp(optrace.HADD, 5, ct_id=0),
            FheOp(optrace.HROT, 5, ct_id=0, rotation=2, hoist_group=0),
        ])
        assert any("interleaves" in v for v in trace.validate())

    def test_hoist_group_mixed_levels_flagged(self):
        trace = OpTrace([
            FheOp(optrace.HROT, 5, ct_id=0, rotation=1, hoist_group=0),
            FheOp(optrace.HROT, 4, ct_id=0, rotation=2, hoist_group=0),
        ])
        assert any("several levels" in v for v in trace.validate())

    def test_check_raises_with_preview(self):
        trace = OpTrace([FheOp(optrace.HADD, 3, ct_id=-1)], name="bad")
        with pytest.raises(ValueError, match="bad.*negative ct_id"):
            trace.check()

    def test_concat_rebases_ct_ids(self):
        a, b = TestOpTrace().make(), TestOpTrace().make()
        joined = a.concat(b)
        assert joined.validate() == []
        first_cts = {op.ct_id for op in list(joined)[:6]}
        second_cts = {op.ct_id for op in list(joined)[6:]}
        assert first_cts.isdisjoint(second_cts)

    def test_repeated_rebases_ct_ids(self):
        trace = TestOpTrace().make().repeated(3)
        assert trace.validate() == []
        assert len({op.ct_id for op in trace}) == 3

    def test_all_workload_traces_validate(self):
        from repro.workloads import (bootstrap_trace, helr_trace,
                                     resnet20_trace)
        for trace in (bootstrap_trace(), helr_trace(batch=256),
                      helr_trace(batch=1024),
                      helr_trace(batch=256, iterations=3),
                      resnet20_trace()):
            assert trace.validate() == [], trace.name


class TestTraceBuilder:
    def test_fresh_ct_increments(self):
        tb = TraceBuilder()
        assert tb.fresh_ct() == 0
        assert tb.fresh_ct() == 1

    def test_rotations_unhoisted(self):
        tb = TraceBuilder()
        tb.rotations(tb.fresh_ct(), 5, [1, 2], hoisted=False)
        assert not tb.build().hoist_groups()

    def test_distinct_hoist_groups(self):
        tb = TraceBuilder()
        ct = tb.fresh_ct()
        tb.rotations(ct, 5, [1, 2])
        tb.rotations(ct, 4, [1, 2])
        assert len(tb.build().hoist_groups()) == 2
