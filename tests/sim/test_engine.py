"""The queueing cycle simulator: accounting identities and orderings."""

import pytest

from repro.ckks.keys import HYBRID, KLSS
from repro.core.optrace import TraceBuilder
from repro.hw.config import (FAST_CONFIG, FAST_36BIT_ALU, FAST_WITHOUT_TBM,
                             fast_variant)
from repro.sim.engine import Engine, UNIT_NAMES
from repro.workloads import bootstrap_trace


def tiny_trace():
    tb = TraceBuilder("tiny")
    ct = tb.fresh_ct()
    tb.rotations(ct, 12, [1, 2, 3], hoisted=True)
    tb.hmult(ct, 10)
    tb.pmult(ct, 10)
    tb.rescale(ct, 10)
    return tb.build()


@pytest.fixture(scope="module")
def boot_result():
    return Engine().run(bootstrap_trace())


class TestAccountingIdentities:
    def test_total_at_least_bottleneck_busy(self, boot_result):
        busiest = max(boot_result.unit_busy_s[u] for u in UNIT_NAMES)
        assert boot_result.total_s >= busiest * 0.999

    def test_utilisation_bounded(self, boot_result):
        for unit, u in boot_result.utilisation().items():
            assert 0.0 <= u <= 1.0, unit

    def test_op_counts(self, boot_result):
        trace = bootstrap_trace()
        ks = len(trace.key_switch_ops())
        assert boot_result.num_key_switches == ks

    def test_kernel_modops_positive(self, boot_result):
        assert boot_result.kernel_modops["ntt"] > 0
        assert boot_result.kernel_modops["bconv"] > 0
        assert boot_result.kernel_modops["keymult"] > 0

    def test_hbm_bytes_sum(self, boot_result):
        assert boot_result.hbm_bytes == pytest.approx(
            boot_result.key_bytes + boot_result.plaintext_bytes)

    def test_stage_labels_cover_bootstrap(self, boot_result):
        for stage in ("ModRaise", "CoeffToSlot", "EvalMod",
                      "SlotToCoeff"):
            assert stage in boot_result.stage_s


class TestDeterminism:
    def test_same_trace_same_result(self):
        t = tiny_trace()
        r1 = Engine().run(t)
        r2 = Engine().run(t)
        assert r1.total_s == r2.total_s
        assert r1.key_bytes == r2.key_bytes


class TestPolicyOrdering:
    """The Fig. 10 ordering must hold on the real workload."""

    def test_hoisting_beats_oneksw(self):
        trace = bootstrap_trace()
        one = Engine(policy_mode="hybrid-only").run(trace)
        hoist = Engine(policy_mode="hoisting-only").run(trace)
        assert hoist.total_s < one.total_s

    def test_aether_beats_oneksw(self):
        trace = bootstrap_trace()
        one = Engine(policy_mode="hybrid-only").run(trace)
        aether = Engine().run(trace)
        assert aether.total_s < one.total_s

    def test_aether_uses_both_methods(self):
        result = Engine().run(bootstrap_trace())
        assert result.method_ops[HYBRID] > 0
        assert result.method_ops[KLSS] > 0

    def test_klss_only_is_memory_crushed(self):
        trace = bootstrap_trace()
        klss = Engine(policy_mode="klss-only").run(trace)
        aether = Engine().run(trace)
        assert klss.total_s > 2 * aether.total_s
        assert klss.key_bytes > aether.key_bytes


class TestConfigVariants:
    def test_no_tbm_slower(self):
        trace = bootstrap_trace()
        fast = Engine(FAST_CONFIG).run(trace)
        no_tbm = Engine(FAST_WITHOUT_TBM).run(trace)
        assert no_tbm.total_s > fast.total_s

    def test_36bit_alu_slowest(self):
        trace = bootstrap_trace()
        no_tbm = Engine(FAST_WITHOUT_TBM).run(trace)
        alu36 = Engine(FAST_36BIT_ALU, policy_mode="hybrid-only").run(trace)
        assert alu36.total_s >= no_tbm.total_s * 0.95

    def test_36bit_alu_never_uses_klss(self):
        result = Engine(FAST_36BIT_ALU).run(bootstrap_trace())
        assert result.method_ops.get(KLSS, 0) == 0

    def test_no_hoisting_config_respected(self):
        config = fast_variant("no-hoist", supports_hoisting=False)
        result = Engine(config).run(bootstrap_trace())
        # every key-switch schedule must be a single op (h == 1)
        assert result.num_key_switches == \
            len(bootstrap_trace().key_switch_ops())

    def test_more_clusters_faster(self):
        trace = bootstrap_trace()
        four = Engine(FAST_CONFIG).run(trace)
        eight = Engine(fast_variant("8C", clusters=8)).run(trace)
        two = Engine(fast_variant("2C", clusters=2)).run(trace)
        assert eight.total_s < four.total_s < two.total_s

    def test_tiny_memory_hurts(self):
        trace = bootstrap_trace()
        small = fast_variant("64MB", onchip_memory_bytes=64 * 2**20,
                             key_storage_bytes=40 * 2**20)
        big = Engine(FAST_CONFIG).run(trace)
        constrained = Engine(small).run(trace)
        assert constrained.total_s > big.total_s


class TestPaperMagnitudes:
    """Coarse absolute anchors (Table 5's FAST row)."""

    def test_bootstrap_latency_band(self, boot_result):
        assert 0.9e-3 < boot_result.total_s < 1.9e-3  # paper: 1.38 ms

    def test_nttu_is_busiest_compute_unit(self, boot_result):
        u = boot_result.utilisation()
        assert u["nttu"] > u["bconvu"]
        assert u["nttu"] > u["kmu"]
        assert u["nttu"] > 0.35  # paper: 66%

    def test_memory_bound_signature(self, boot_result):
        # Sec. 7.4: substantial HBM busy time.
        assert boot_result.utilisation()["hbm"] > 0.10


class TestConstrainConfigPurity:
    """_constrain_config must not mutate shared Aether decisions."""

    def test_input_config_unmodified(self):
        trace = bootstrap_trace()
        full = Engine(FAST_CONFIG)
        shared = full.aether.run(trace)
        snapshot = {uid: (d.method, d.hoisting)
                    for uid, d in shared.decisions.items()}
        constrained = Engine(FAST_36BIT_ALU)._constrain_config(shared)
        after = {uid: (d.method, d.hoisting)
                 for uid, d in shared.decisions.items()}
        assert after == snapshot
        assert all(d.method == HYBRID
                   for d in constrained.decisions.values())

    def test_hoisting_clamp_copies(self):
        trace = bootstrap_trace()
        engine = Engine(fast_variant("noH", supports_hoisting=False))
        shared = Engine(FAST_CONFIG).aether.run(trace)
        hoisted_before = [d.hoisting for d in shared.decisions.values()]
        constrained = engine._constrain_config(shared)
        assert [d.hoisting for d in shared.decisions.values()] \
            == hoisted_before
        assert all(d.hoisting == 1
                   for d in constrained.decisions.values())
