"""Lowering: op -> kernel stages, policies, hoist fusion."""

import pytest

from repro.ckks.keys import HYBRID, KLSS
from repro.ckks.keyswitch import cost
from repro.ckks.params import SET_I, SET_II
from repro.core import optrace
from repro.core.aether import Aether
from repro.core.optrace import FheOp, TraceBuilder
from repro.sim.kernels import (KERNEL_DSU, Policy, lower_key_switch,
                               lower_plain_op, lower_trace)


def make_aether():
    return Aether(SET_I, SET_II, key_storage_bytes=180e6,
                  hbm_bandwidth=1e12, modops_per_second=1.2e13)


class TestLowerKeySwitch:
    def test_hybrid_stage_structure(self):
        op = FheOp(optrace.HMULT, 20)
        sched = lower_key_switch(op, HYBRID, 1, SET_I, 0.5)
        assert len(sched.stages) == 3  # decompose, keymult, moddown
        assert sched.keymult_stage == 1
        assert sched.method == HYBRID

    def test_rotation_adds_automorph_task(self):
        op = FheOp(optrace.HROT, 20, rotation=4)
        sched = lower_key_switch(op, HYBRID, 1, SET_I, 0.5)
        kernels = [t.kernel for t in sched.stages[1]]
        assert "automorph" in kernels

    def test_hmult_has_no_automorph(self):
        op = FheOp(optrace.HMULT, 20)
        sched = lower_key_switch(op, HYBRID, 1, SET_I, 0.5)
        kernels = [t.kernel for stage in sched.stages for t in stage]
        assert "automorph" not in kernels

    def test_total_modops_match_cost_model(self):
        op = FheOp(optrace.HMULT, 20)
        sched = lower_key_switch(op, HYBRID, 1, SET_I, 0.5)
        expected = cost.hybrid_keyswitch_ops(SET_I, 20).total
        assert sched.total_modops == pytest.approx(expected)

    def test_klss_total_matches_cost_model(self):
        op = FheOp(optrace.HMULT, 20)
        sched = lower_key_switch(op, KLSS, 1, SET_II, 0.5)
        expected = cost.klss_keyswitch_ops(SET_II, 20).total
        assert sched.total_modops == pytest.approx(expected)

    def test_klss_mixes_precisions(self):
        op = FheOp(optrace.HMULT, 20)
        sched = lower_key_switch(op, KLSS, 1, SET_II, 0.5)
        flags = {t.wide for stage in sched.stages for t in stage}
        assert flags == {True, False}

    def test_hybrid_all_narrow(self):
        op = FheOp(optrace.HMULT, 20)
        sched = lower_key_switch(op, HYBRID, 1, SET_I, 0.5)
        assert all(not t.wide for stage in sched.stages for t in stage)

    def test_hoisted_batch_shares_decompose(self):
        op = FheOp(optrace.HROT, 20, rotation=1)
        batch = lower_key_switch(op, HYBRID, 3, SET_I, 0.5,
                                 batch_rotations=3,
                                 rotations=(1, 2, 3))
        single = lower_key_switch(op, HYBRID, 1, SET_I, 0.5)
        shared = cost.hybrid_decompose_ops(SET_I, 20).total
        assert batch.total_modops == pytest.approx(
            3 * single.total_modops - 2 * shared)
        assert batch.rotations == (1, 2, 3)

    def test_minks_regen_adds_ntt_work(self):
        op = FheOp(optrace.HMULT, 20)
        plain = lower_key_switch(op, HYBRID, 1, SET_I, 0.5)
        regen = lower_key_switch(op, HYBRID, 1, SET_I, 0.5,
                                 minks_regen=True)
        assert regen.total_modops > plain.total_modops

    def test_key_bytes_scale_with_batch(self):
        op = FheOp(optrace.HROT, 20, rotation=1)
        batch = lower_key_switch(op, HYBRID, 2, SET_I, 0.5,
                                 batch_rotations=2, rotations=(1, 2))
        assert batch.key_bytes == pytest.approx(
            2 * batch.key_bytes_per_key)


class TestLowerPlainOps:
    def test_pmult_has_oflimb_stage(self):
        sched = lower_plain_op(FheOp(optrace.PMULT, 10), SET_I)
        assert len(sched.stages) == 2
        kernels = [t.kernel for t in sched.stages[0]]
        assert "ntt" in kernels and "bconv" in kernels

    def test_rescale_rides_dsu(self):
        sched = lower_plain_op(FheOp(optrace.RESCALE, 10), SET_I)
        assert sched.stages[0][0].kernel == KERNEL_DSU

    def test_modraise_extends_basis(self):
        sched = lower_plain_op(FheOp(optrace.MOD_RAISE, 35), SET_I)
        kernels = {t.kernel for t in sched.stages[0]}
        assert kernels == {"ntt", "bconv"}

    @pytest.mark.parametrize("kind", [optrace.HADD, optrace.PADD,
                                      optrace.CADD, optrace.CMULT])
    def test_elementwise_ops(self, kind):
        sched = lower_plain_op(FheOp(kind, 10), SET_I)
        assert sched.stages[0][0].kernel == "elementwise"

    def test_keyswitch_kind_rejected(self):
        with pytest.raises(ValueError):
            lower_plain_op(FheOp(optrace.HMULT, 10), SET_I)


class TestPolicies:
    def unit(self):
        aether = make_aether()
        tb = TraceBuilder()
        tb.rotations(tb.fresh_ct(), 10, [1, 2, 3, 4])
        return aether.decision_units(tb.build())[0]

    def test_hybrid_only(self):
        assert Policy("hybrid-only").decide(self.unit()) == (HYBRID, 1)

    def test_hoisting_only(self):
        assert Policy("hoisting-only").decide(self.unit()) == (HYBRID, 4)

    def test_klss_only(self):
        assert Policy("klss-only").decide(self.unit()) == (KLSS, 1)

    def test_aether_requires_config(self):
        with pytest.raises(ValueError):
            Policy("aether").decide(self.unit())

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            Policy("random").decide(self.unit())


class TestLowerTrace:
    def build(self):
        tb = TraceBuilder("t")
        ct = tb.fresh_ct()
        tb.rotations(ct, 12, [1, 2, 3, 4], hoisted=True)
        tb.hmult(ct, 10)
        tb.pmult(ct, 10)
        tb.rescale(ct, 10)
        return tb.build()

    def test_one_schedule_per_op_unhoisted(self):
        trace = self.build()
        scheds = lower_trace(trace, make_aether(), Policy("hybrid-only"))
        assert len(scheds) == len(trace)

    def test_hoisting_fuses_schedules(self):
        trace = self.build()
        scheds = lower_trace(trace, make_aether(), Policy("hoisting-only"))
        # 4 rotations fuse into 1 schedule: 4 ops become 1.
        assert len(scheds) == len(trace) - 3
        fused = [s for s in scheds if s.hoisting == 4]
        assert len(fused) == 1
        assert fused[0].rotations == (1, 2, 3, 4)

    def test_aether_policy_roundtrip(self):
        trace = self.build()
        aether = make_aether()
        config = aether.run(trace)
        scheds = lower_trace(trace, aether, Policy("aether", config))
        assert sum(max(1, s.hoisting) if s.op.needs_key_switch else 0
                   for s in scheds) >= 5
