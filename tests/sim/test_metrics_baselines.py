"""Metrics (power/energy/EDP, T_mult,a/s) and baseline data."""

import pytest

from repro.ckks.params import SET_II
from repro.sim import baselines, metrics
from repro.sim.engine import Engine
from repro.workloads import bootstrap_trace


@pytest.fixture(scope="module")
def engine():
    return Engine()


@pytest.fixture(scope="module")
def boot(engine):
    return engine.run(bootstrap_trace())


class TestPowerReport:
    def test_average_below_peak(self, engine, boot):
        report = metrics.power_report(boot, engine.accelerator)
        assert 0 < report.average_w < \
            engine.accelerator.total_peak_power_w()

    def test_bootstrap_power_band(self, engine, boot):
        report = metrics.power_report(boot, engine.accelerator)
        assert 80 < report.average_w < 220  # paper: ~120 W

    def test_energy_is_power_times_latency(self, engine, boot):
        report = metrics.power_report(boot, engine.accelerator)
        assert report.energy_j == pytest.approx(
            report.average_w * boot.total_s)
        assert report.edp_js == pytest.approx(
            report.energy_j * boot.total_s)

    def test_components_positive(self, engine, boot):
        report = metrics.power_report(boot, engine.accelerator)
        assert all(v >= 0 for v in report.per_component_w.values())
        assert "Register Files" in report.per_component_w


class TestAmortizedMultTime:
    def test_fast_band(self, boot):
        t_as = metrics.amortized_mult_time(
            boot.total_s, SET_II.num_slots, SET_II.effective_level)
        assert 3e-9 < t_as < 8e-9  # paper: 5.4 ns

    def test_formula(self):
        assert metrics.amortized_mult_time(1.0, 10, 10) == \
            pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            metrics.amortized_mult_time(1.0, 0, 8)

    def test_beats_published_baselines(self, boot):
        ours = metrics.amortized_mult_time(
            boot.total_s, SET_II.num_slots, SET_II.effective_level) * 1e9
        for b in baselines.TABLE6_PUBLISHED:
            assert ours < b.t_mult_ns


class TestBaselineData:
    def test_published_rows_complete(self):
        for b in baselines.ALL_PUBLISHED:
            assert b.area_mm2 > 0
            assert b.word_bits in (28, 36, 60, 64)

    def test_sharp_family_ordering(self):
        # more resources => faster (published numbers must agree)
        assert baselines.SHARP.bootstrap_ms > \
            baselines.SHARP_LM.bootstrap_ms > \
            baselines.SHARP_LM_8C.bootstrap_ms

    def test_paper_fast_row(self):
        assert baselines.PAPER_FAST.bootstrap_ms == 1.38
        assert baselines.PAPER_FAST.t_mult_ns == 5.4

    def test_sharp_like_config_flags(self):
        config = baselines.sharp_like_config()
        assert not config.has_tbm
        assert not config.supports_klss
        assert config.wide_bits == 36
        lm8c = baselines.sharp_like_config(large_memory=True,
                                           eight_clusters=True)
        assert lm8c.clusters == 8
        assert lm8c.onchip_memory_bytes == 281 * 2**20

    def test_sharp_like_simulation_slower_than_fast(self, boot):
        sharp = Engine(baselines.sharp_like_config(),
                       policy_mode="hybrid-only").run(bootstrap_trace())
        assert sharp.total_s > boot.total_s
        # Published SHARP is 3.12 ms; our model should be same order.
        assert 1.5e-3 < sharp.total_s < 5e-3

    def test_fast_vs_sharp_speedup_band(self, boot):
        sharp = Engine(baselines.sharp_like_config(),
                       policy_mode="hybrid-only").run(bootstrap_trace())
        speedup = sharp.total_s / boot.total_s
        assert 1.4 < speedup < 3.2  # paper: 1.85x avg, 2.26x bootstrap


class TestPerformancePerArea:
    def test_figure_of_merit(self):
        assert metrics.performance_per_area(2.0, 100.0) == \
            pytest.approx(1 / 200.0)
